"""Block-centric engine — the Blogel stand-in (paper [50]).

Blogel extends vertex-centric programming with *B-compute*: each block (a
connected partition of the graph) acts as a virtual vertex running a local
sequential pass per superstep, exchanging per-vertex border messages with
other blocks.  Two Blogel behaviours matter for the paper's comparison:

* **B-compute without incremental reuse** — when new border values arrive,
  a Blogel block re-runs its local computation seeded with current state
  (Fig. 11's recast Dijkstra), whereas GRAPE's IncEval touches only the
  affected area; and border updates are shipped per vertex without the
  coordinator's min-aggregation, so Blogel ships more bytes than GRAPE.
* **CC precomputation at partition time** — Blogel's partitioner groups
  vertices by connected component *before* queries run, which is why its
  CC numbers look near-zero (paper Exp-1(2)); :class:`BlogelEngine` with
  ``precompute_cc=True`` reproduces this, and like the paper we exclude
  the precomputation from query cost.

For Sim, SubIso and CF the paper observes that Blogel's programming is
"essentially vertex-centric" (V-compute); :func:`run_vcompute` executes a
vertex program with block-aligned placement so intra-block messages are
free — Blogel's one structural advantage over Giraph for these queries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from math import inf
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.baselines.vertex_centric import PregelEngine, PregelResult, \
    VertexProgram
from repro.graph.graph import Graph, Node
from repro.partition.base import Fragment, Fragmentation, PartitionStrategy
from repro.partition.strategies import MetisLikePartition
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.metrics import CostModel, RunMetrics, message_bytes
from repro.sequential.sssp import dijkstra
from repro.sequential.wcc import connected_components

__all__ = ["BlockProgram", "BlogelEngine", "BlogelResult",
           "SSSPBlockProgram", "CCBlockProgram", "run_vcompute"]


class BlockProgram(abc.ABC):
    """A Blogel B-compute program over one block (fragment)."""

    @abc.abstractmethod
    def init_state(self, block: Fragment, query: Any) -> Any:
        """Block-local state before the first superstep."""

    @abc.abstractmethod
    def bcompute(self, block: Fragment, state: Any,
                 incoming: List[Tuple[Node, Any]], gp,
                 query: Any) -> List[Tuple[int, Node, Any]]:
        """One block superstep.

        ``incoming`` is a list of ``(vertex, value)`` border messages; ``gp``
        is the fragmentation graph for routing.  Returns outgoing
        ``(dest_block, vertex, value)`` triples.  A block halts by sending
        nothing (woken by incoming messages).
        """

    @abc.abstractmethod
    def output(self, block: Fragment, state: Any, query: Any) -> Any:
        """Block-local piece of the answer."""

    @abc.abstractmethod
    def combine_outputs(self, pieces: List[Any], query: Any) -> Any:
        """Assemble block outputs into the query answer."""


@dataclass
class BlogelResult:
    answer: Any
    metrics: RunMetrics


class BlogelEngine:
    """Block-centric execution; one block per worker.

    ``precompute_cc=True`` replaces the partition strategy's assignment
    with a connected-component-aligned one (Blogel's partitioner), with
    components distributed round-robin by size.  As in the paper, that
    precomputation happens at graph-loading time and is not charged to
    queries.
    """

    def __init__(self, num_workers: int, *,
                 partition: Optional[PartitionStrategy] = None,
                 cost_model: Optional[CostModel] = None,
                 precompute_cc: bool = False,
                 max_supersteps: int = 1_000_000):
        self.num_workers = num_workers
        self.partition = partition or MetisLikePartition()
        self.cost_model = cost_model
        self.precompute_cc = precompute_cc
        self.max_supersteps = max_supersteps

    # ------------------------------------------------------------------
    def make_fragmentation(self, graph: Graph) -> Fragmentation:
        if not self.precompute_cc:
            return self.partition.partition(graph, self.num_workers)
        # Blogel's partitioner: vertices of one component stay together.
        cids = connected_components(graph)
        by_component: Dict[Node, List[Node]] = {}
        for v, cid in cids.items():
            by_component.setdefault(cid, []).append(v)
        loads = [0] * self.num_workers
        assignment: Dict[Node, int] = {}
        for cid in sorted(by_component, key=lambda c: -len(by_component[c])):
            target = min(range(self.num_workers), key=lambda w: loads[w])
            for v in by_component[cid]:
                assignment[v] = target
            loads[target] += len(by_component[cid])
        from repro.partition.base import build_edge_cut_fragments
        return build_edge_cut_fragments(graph, assignment, self.num_workers,
                                        strategy_name="blogel-cc")

    # ------------------------------------------------------------------
    def run(self, program: BlockProgram, graph: Graph, query: Any = None,
            fragmentation: Optional[Fragmentation] = None) -> BlogelResult:
        if fragmentation is None:
            fragmentation = self.make_fragmentation(graph)
        cluster = SimulatedCluster(self.num_workers,
                                   cost_model=self.cost_model)
        blocks = fragmentation.fragments
        states = {b.fid: program.init_state(b, query) for b in blocks}

        inboxes: Dict[int, List[Tuple[Node, Any]]] = {
            b.fid: [] for b in blocks}
        active = set(b.fid for b in blocks)
        pending_bytes = 0
        pending_msgs = 0
        superstep = 0

        while active:
            if superstep >= self.max_supersteps:
                raise RuntimeError("block program did not quiesce")
            outgoing: Dict[int, List[Tuple[int, Node, Any]]] = {}

            def make_task(fid: int):
                def task():
                    if fid not in active:
                        return
                    incoming, inboxes[fid] = inboxes[fid], []
                    outgoing[fid] = program.bcompute(
                        blocks[fid], states[fid], incoming,
                        fragmentation.gp, query)
                return task

            cluster.run_superstep([make_task(b.fid) for b in blocks],
                                  bytes_shipped=pending_bytes,
                                  num_messages=pending_msgs)

            pending_bytes = 0
            pending_msgs = 0
            next_active: Set[int] = set()
            for src, msgs in outgoing.items():
                for dest, vertex, value in msgs:
                    inboxes[dest].append((vertex, value))
                    next_active.add(dest)
                    if dest != src:
                        pending_bytes += message_bytes((vertex, value))
                        pending_msgs += 1
            active = next_active
            superstep += 1

        pieces = [program.output(b, states[b.fid], query) for b in blocks]
        return BlogelResult(answer=program.combine_outputs(pieces, query),
                            metrics=cluster.metrics)


class SSSPBlockProgram(BlockProgram):
    """Fig. 11's recast Dijkstra: per superstep, re-run the local Dijkstra
    seeded with all current distances (no incremental reuse), then ship
    improved border distances per vertex."""

    def init_state(self, block: Fragment, query: Node) -> Dict[str, Any]:
        return {"dist": {}, "sent": {}}

    def bcompute(self, block: Fragment, state: Dict[str, Any],
                 incoming: List[Tuple[Node, float]], gp,
                 query: Node) -> List[Tuple[int, Node, Any]]:
        dist = state["dist"]
        improved = False
        for v, d in incoming:
            if d < dist.get(v, inf):
                dist[v] = d
                improved = True
        if not improved and dist:
            return []
        # Full local recomputation — the B-compute cost GRAPE avoids.
        state["dist"] = dijkstra(block.graph, query, initial=dist)
        out: List[Tuple[int, Node, Any]] = []
        for v in block.outer:
            d = state["dist"].get(v, inf)
            if d < inf and d < state["sent"].get(v, inf):
                state["sent"][v] = d
                out.append((gp.owner(v), v, d))
        return out

    def output(self, block: Fragment, state: Dict[str, Any],
               query: Node) -> Dict[Node, float]:
        return {v: state["dist"].get(v, inf) for v in block.owned}

    def combine_outputs(self, pieces: List[Dict[Node, float]],
                        query: Node) -> Dict[Node, float]:
        answer: Dict[Node, float] = {}
        for piece in pieces:
            answer.update(piece)
        return answer


class CCBlockProgram(BlockProgram):
    """With Blogel's CC-aligned partition each block labels its vertices
    locally; messages flow only if a component straddles blocks."""

    def init_state(self, block: Fragment, query: Any) -> Dict[str, Any]:
        return {"cid": {}, "started": False}

    def bcompute(self, block: Fragment, state: Dict[str, Any],
                 incoming: List[Tuple[Node, Any]], gp,
                 query: Any) -> List[Tuple[int, Node, Any]]:
        first = not state["started"]
        if first:
            state["started"] = True
            state["cid"] = connected_components(block.graph)
        cids = state["cid"]
        changed: Set[Node] = set()
        for v, cid in incoming:
            if cid < cids.get(v, v):
                # Lower the whole local component containing v — a plain
                # scan, since B-compute has no root-link bookkeeping.
                old = cids[v]
                for w, c in cids.items():
                    if c == old:
                        cids[w] = cid
                        changed.add(w)
        border = block.border_nodes
        relevant = border if first else (changed & border)
        out: List[Tuple[int, Node, Any]] = []
        for v in relevant:
            for dest in gp.holders(v):
                if dest != block.fid:
                    out.append((dest, v, cids[v]))
        return out

    def output(self, block: Fragment, state: Dict[str, Any],
               query: Any) -> Dict[Node, Node]:
        return {v: state["cid"][v] for v in block.owned}

    def combine_outputs(self, pieces: List[Dict[Node, Node]],
                        query: Any) -> Dict[Node, Set[Node]]:
        buckets: Dict[Node, Set[Node]] = {}
        for piece in pieces:
            for v, cid in piece.items():
                buckets.setdefault(cid, set()).add(v)
        return buckets


def run_vcompute(vertex_program: VertexProgram, graph: Graph, query: Any,
                 num_workers: int, *,
                 partition: Optional[PartitionStrategy] = None,
                 cost_model: Optional[CostModel] = None) -> PregelResult:
    """Blogel V-compute: a vertex program with block-aligned placement.

    Vertices of a block live on one worker, so intra-block messages are
    free — Blogel's edge over plain Giraph for Sim/SubIso/CF.
    """
    strategy = partition or MetisLikePartition()
    placement = strategy.assign(graph, num_workers)
    engine = PregelEngine(num_workers, cost_model=cost_model,
                          placement=placement, intra_worker_free=True)
    return engine.run(vertex_program, graph, query=query)
