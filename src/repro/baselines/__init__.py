"""Baseline systems: vertex-centric (Giraph), GAS (GraphLab), block-centric
(Blogel) — the paper's comparison targets, rebuilt on the same simulated
cluster so their metrics are directly comparable to GRAPE's."""

from repro.baselines.block_centric import (BlogelEngine, BlogelResult,
                                           BlockProgram, CCBlockProgram,
                                           SSSPBlockProgram, run_vcompute)
from repro.baselines.gas import (GASEngine, GASProgram, GASResult,
                                 run_subiso_on_gas)
from repro.baselines.gas_programs import (CCGASProgram, CFGASProgram,
                                          SimGASProgram, SSSPGASProgram)
from repro.baselines.vertex_centric import (PregelEngine, PregelResult,
                                            VertexContext, VertexProgram)
from repro.baselines.vertex_programs import (CCVertexProgram,
                                             CFVertexProgram,
                                             SimVertexProgram,
                                             SSSPVertexProgram,
                                             SubIsoVertexProgram)

__all__ = [
    "PregelEngine", "PregelResult", "VertexProgram", "VertexContext",
    "SSSPVertexProgram", "CCVertexProgram", "SimVertexProgram",
    "SubIsoVertexProgram", "CFVertexProgram",
    "GASEngine", "GASProgram", "GASResult", "run_subiso_on_gas",
    "SSSPGASProgram", "CCGASProgram", "SimGASProgram", "CFGASProgram",
    "BlogelEngine", "BlogelResult", "BlockProgram", "SSSPBlockProgram",
    "CCBlockProgram", "run_vcompute",
]
