"""GAS engine — the GraphLab stand-in (synchronous mode, as in the paper).

PowerGraph/GraphLab decompose a vertex program into **gather** (pull data
along edges), **apply** (update the vertex), and **scatter** (signal
neighbors).  The paper ran GraphLab synchronously for comparability with
Giraph; we do the same: per superstep, every active vertex gathers over
its gather-direction edges, applies, and scatters activation signals.

Communication accounting mirrors a distributed GAS system: a gather across
a worker boundary ships the neighbor's value; a scatter activation across
a boundary ships a signal (with the scatterer's value, as GraphLab's cached
"most recent value" protocol does).

SubIso does not decompose into gather/apply/scatter (it needs arbitrary
partial-match messages); like published GraphLab evaluations, we run it
with the message-passing escape hatch — :func:`run_subiso_on_gas` executes
the vertex-centric expansion with GAS-style pull accounting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.baselines.vertex_centric import PregelEngine
from repro.baselines.vertex_programs import SubIsoVertexProgram
from repro.graph.graph import Graph, Node
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.metrics import CostModel, RunMetrics, message_bytes

__all__ = ["GASProgram", "GASEngine", "GASResult", "run_subiso_on_gas"]


class GASProgram(abc.ABC):
    """A gather-apply-scatter vertex program."""

    #: which edges gather pulls over: "in", "out" or "both"
    gather_direction = "in"
    #: which edges scatter signals over: "in", "out" or "both"
    scatter_direction = "out"

    @abc.abstractmethod
    def init_value(self, graph: Graph, vertex: Node, query: Any) -> Any:
        """Vertex value before the first superstep (all vertices start
        active)."""

    @abc.abstractmethod
    def gather(self, graph: Graph, vertex: Node, nbr: Node, nbr_value: Any,
               weight: float, query: Any) -> Any:
        """Contribution of one neighbor; ``None`` contributions are
        skipped."""

    @abc.abstractmethod
    def merge(self, a: Any, b: Any) -> Any:
        """Commutative-associative combiner for gather contributions."""

    @abc.abstractmethod
    def apply(self, graph: Graph, vertex: Node, value: Any, acc: Any,
              query: Any) -> Any:
        """New vertex value from the gathered accumulator (``None`` when
        no neighbor contributed)."""

    def scatter_activates(self, graph: Graph, vertex: Node, old: Any,
                          new: Any, query: Any) -> bool:
        """Whether to signal scatter-direction neighbors this superstep."""
        return old != new

    def finalize(self, graph: Graph, values: Dict[Node, Any],
                 query: Any) -> Any:
        return values


@dataclass
class GASResult:
    answer: Any
    values: Dict[Node, Any]
    metrics: RunMetrics


def _edges(graph: Graph, vertex: Node, direction: str):
    if direction in ("in", "both"):
        for u, w in graph.predecessors_with_weights(vertex):
            yield u, w
    if direction in ("out", "both"):
        for u, w in graph.successors_with_weights(vertex):
            yield u, w


class GASEngine:
    """Synchronous gather-apply-scatter over the simulated cluster."""

    def __init__(self, num_workers: int, *,
                 cost_model: Optional[CostModel] = None,
                 max_supersteps: int = 1_000_000):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self.cost_model = cost_model
        self.max_supersteps = max_supersteps

    def _worker_of(self, v: Node) -> int:
        return hash(v) % self.num_workers

    def run(self, program: GASProgram, graph: Graph,
            query: Any = None) -> GASResult:
        cluster = SimulatedCluster(self.num_workers,
                                   cost_model=self.cost_model)
        by_worker: List[List[Node]] = [[] for _ in range(self.num_workers)]
        for v in graph.nodes():
            by_worker[self._worker_of(v)].append(v)

        values: Dict[Node, Any] = {v: program.init_value(graph, v, query)
                                   for v in graph.nodes()}
        active: Set[Node] = set(graph.nodes())
        superstep = 0
        pending_bytes = 0
        pending_msgs = 0

        while active:
            if superstep >= self.max_supersteps:
                raise RuntimeError("GAS program did not quiesce within "
                                   f"{self.max_supersteps} supersteps")
            next_active: Set[Node] = set()
            step_bytes = 0
            step_msgs = 0
            # Stage the new values: sync GAS applies against a snapshot.
            staged: Dict[Node, Any] = {}

            def make_task(wid: int):
                def task():
                    nonlocal step_bytes, step_msgs
                    for v in by_worker[wid]:
                        if v not in active:
                            continue
                        acc = None
                        for nbr, w in _edges(graph, v,
                                             program.gather_direction):
                            contrib = program.gather(graph, v, nbr,
                                                     values[nbr], w, query)
                            if contrib is None:
                                continue
                            # Cross-worker gather ships the neighbor value.
                            if self._worker_of(nbr) != wid:
                                step_bytes += message_bytes(values[nbr])
                                step_msgs += 1
                            acc = contrib if acc is None \
                                else program.merge(acc, contrib)
                        new_value = program.apply(graph, v, values[v], acc,
                                                  query)
                        staged[v] = new_value
                        if program.scatter_activates(graph, v, values[v],
                                                     new_value, query):
                            for nbr, _w in _edges(
                                    graph, v, program.scatter_direction):
                                next_active.add(nbr)
                                if self._worker_of(nbr) != wid:
                                    step_bytes += message_bytes(new_value)
                                    step_msgs += 1
                return task

            cluster.run_superstep([make_task(w)
                                   for w in range(self.num_workers)],
                                  bytes_shipped=pending_bytes,
                                  num_messages=pending_msgs)
            values.update(staged)
            pending_bytes = step_bytes
            pending_msgs = step_msgs
            active = next_active
            superstep += 1

        answer = program.finalize(graph, values, query)
        return GASResult(answer=answer, values=values,
                         metrics=cluster.metrics)


def run_subiso_on_gas(graph: Graph, query: Graph, num_workers: int, *,
                      cost_model: Optional[CostModel] = None):
    """SubIso on the GraphLab stand-in.

    GAS cannot express partial-match expansion, so — as GraphLab
    deployments do — this falls back to message passing; the pull-style
    accounting of GraphLab is approximated by the same cross-worker byte
    counting the vertex engine uses.
    """
    engine = PregelEngine(num_workers, cost_model=cost_model)
    return engine.run(SubIsoVertexProgram(), graph, query=query)
