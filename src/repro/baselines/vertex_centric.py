"""Synchronous vertex-centric engine (Pregel/Giraph stand-in).

The paper compares GRAPE against Giraph, the open-source Pregel (Section 7).
This module reproduces that baseline faithfully:

* "think like a vertex": a user :class:`VertexProgram` implements
  ``compute`` over one vertex, its value and incoming messages;
* BSP supersteps with a barrier; a vertex is active when it has incoming
  messages or has not voted to halt;
* optional sender-side combiners (Pregel §4.2), used by SSSP/CC exactly as
  a tuned Giraph deployment would;
* vertices are hash-partitioned over workers; messages between vertices on
  different workers are charged as network communication, intra-worker
  messages are free (Pregel's local short-circuit).

The engine runs on the same :class:`~repro.runtime.cluster.SimulatedCluster`
as GRAPE, so times, supersteps and bytes are directly comparable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, \
    Set, Tuple

from repro.graph.graph import Graph, Node
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.metrics import CostModel, RunMetrics, message_bytes

__all__ = ["VertexProgram", "VertexContext", "PregelEngine", "PregelResult"]


class VertexContext:
    """Per-vertex API surface inside ``compute``."""

    __slots__ = ("superstep", "_out", "_halted", "vertex")

    def __init__(self, superstep: int, vertex: Node):
        self.superstep = superstep
        self.vertex = vertex
        self._out: List[Tuple[Node, Any]] = []
        self._halted = False

    def send(self, dest: Node, message: Any) -> None:
        """Send ``message`` to vertex ``dest`` (delivered next superstep)."""
        self._out.append((dest, message))

    def send_to_all(self, dests: Iterable[Node], message: Any) -> None:
        for dest in dests:
            self._out.append((dest, message))

    def vote_to_halt(self) -> None:
        """Deactivate this vertex until a message wakes it."""
        self._halted = True


class VertexProgram(abc.ABC):
    """A Pregel vertex program for one query class."""

    @abc.abstractmethod
    def init_value(self, graph: Graph, vertex: Node, query: Any) -> Any:
        """The vertex value before superstep 0."""

    @abc.abstractmethod
    def compute(self, ctx: VertexContext, graph: Graph, vertex: Node,
                value: Any, messages: List[Any], query: Any) -> Any:
        """One superstep at one vertex; returns the new vertex value."""

    def combine(self, messages: List[Any]) -> List[Any]:
        """Optional sender-side combiner: fold messages addressed to one
        destination vertex.  Default: no combining."""
        return messages

    def finalize(self, graph: Graph, values: Dict[Node, Any],
                 query: Any) -> Any:
        """Turn final vertex values into the query answer."""
        return values


@dataclass
class PregelResult:
    answer: Any
    values: Dict[Node, Any]
    metrics: RunMetrics


class PregelEngine:
    """Synchronous vertex-centric execution over the simulated cluster.

    Parameters
    ----------
    num_workers:
        Physical workers; vertices are assigned by ``placement`` or hash.
    placement:
        Optional vertex-to-worker map (used by the block-centric baseline
        to make intra-block traffic free); defaults to hash placement.
    intra_worker_free:
        Whether same-worker messages cost no network bytes (Pregel's
        behaviour; the block-centric engine reuses this machinery with
        block-aligned placement).
    """

    def __init__(self, num_workers: int, *,
                 cost_model: Optional[CostModel] = None,
                 placement: Optional[Dict[Node, int]] = None,
                 intra_worker_free: bool = True,
                 max_supersteps: int = 1_000_000):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self.cost_model = cost_model
        self.placement = placement
        self.intra_worker_free = intra_worker_free
        self.max_supersteps = max_supersteps

    # ------------------------------------------------------------------
    def _worker_of(self, v: Node) -> int:
        if self.placement is not None:
            return self.placement[v]
        return hash(v) % self.num_workers

    def run(self, program: VertexProgram, graph: Graph,
            query: Any = None) -> PregelResult:
        """Run ``program`` to quiescence (all halted, no messages)."""
        cluster = SimulatedCluster(self.num_workers,
                                   cost_model=self.cost_model)

        by_worker: List[List[Node]] = [[] for _ in range(self.num_workers)]
        for v in graph.nodes():
            by_worker[self._worker_of(v)].append(v)

        values: Dict[Node, Any] = {v: program.init_value(graph, v, query)
                                   for v in graph.nodes()}
        halted: Set[Node] = set()
        inbox: Dict[Node, List[Any]] = {}
        superstep = 0
        pending_bytes = 0   # traffic routed by the previous superstep,
        pending_msgs = 0    # charged to the superstep that delivers it

        while True:
            if superstep > 0 and not inbox and len(halted) == len(values):
                break  # quiescence: everyone halted, nothing in flight
            if superstep >= self.max_supersteps:
                raise RuntimeError(
                    "vertex program did not quiesce within "
                    f"{self.max_supersteps} supersteps")

            outboxes: List[List[Tuple[Node, Any]]] = \
                [[] for _ in range(self.num_workers)]

            def make_task(wid: int):
                def task():
                    out = outboxes[wid]
                    for v in by_worker[wid]:
                        msgs = inbox.get(v)
                        if msgs is None and v in halted:
                            continue
                        ctx = VertexContext(superstep, v)
                        values[v] = program.compute(
                            ctx, graph, v, values[v], msgs or [], query)
                        if ctx._halted:
                            halted.add(v)
                        else:
                            halted.discard(v)
                        out.extend(ctx._out)
                return task

            cluster.run_superstep([make_task(w)
                                   for w in range(self.num_workers)],
                                  bytes_shipped=pending_bytes,
                                  num_messages=pending_msgs)

            # Route: sender-side combine per destination vertex, then
            # charge cross-worker traffic.
            new_inbox: Dict[Node, List[Any]] = {}
            pending_bytes = 0
            pending_msgs = 0
            for wid in range(self.num_workers):
                per_dest: Dict[Node, List[Any]] = {}
                for dest, msg in outboxes[wid]:
                    per_dest.setdefault(dest, []).append(msg)
                for dest, msgs in per_dest.items():
                    msgs = program.combine(msgs)
                    new_inbox.setdefault(dest, []).extend(msgs)
                    crosses = self._worker_of(dest) != wid
                    if crosses or not self.intra_worker_free:
                        pending_bytes += message_bytes(msgs)
                        pending_msgs += len(msgs)

            inbox = new_inbox
            superstep += 1

        answer = program.finalize(graph, values, query)
        return PregelResult(answer=answer, values=values,
                            metrics=cluster.metrics)
