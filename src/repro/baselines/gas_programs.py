"""GAS programs for SSSP, CC, Sim and CF (the GraphLab recasts).

The paper's Exp-6 notes how GraphLab splits one sequential operation —
"collect the distances from the neighbors of a node and update" — into
separate Apply and Scatter functions; these programs show exactly that
decomposition.
"""

from __future__ import annotations

from math import inf
from typing import Any, Dict, FrozenSet, Optional, Set, Tuple

import numpy as np

from repro.baselines.gas import GASProgram
from repro.graph.graph import Graph, Node

__all__ = [
    "SSSPGASProgram",
    "CCGASProgram",
    "SimGASProgram",
    "CFGASProgram",
]


class SSSPGASProgram(GASProgram):
    """Gather min over in-edges of ``dist(u) + w``; scatter on improvement."""

    gather_direction = "in"
    scatter_direction = "out"

    def init_value(self, graph: Graph, vertex: Node, query: Node) -> float:
        return 0.0 if vertex == query else inf

    def gather(self, graph: Graph, vertex: Node, nbr: Node, nbr_value: float,
               weight: float, query: Node) -> Optional[float]:
        if nbr_value == inf:
            return None
        return nbr_value + weight

    def merge(self, a: float, b: float) -> float:
        return min(a, b)

    def apply(self, graph: Graph, vertex: Node, value: float,
              acc: Optional[float], query: Node) -> float:
        if acc is None:
            return value
        return min(value, acc)


class CCGASProgram(GASProgram):
    """Gather min component id over all edges; scatter on change."""

    gather_direction = "both"
    scatter_direction = "both"

    def init_value(self, graph: Graph, vertex: Node, query: Any) -> Node:
        return vertex

    def gather(self, graph: Graph, vertex: Node, nbr: Node, nbr_value: Node,
               weight: float, query: Any) -> Node:
        return nbr_value

    def merge(self, a: Node, b: Node) -> Node:
        return min(a, b)

    def apply(self, graph: Graph, vertex: Node, value: Node,
              acc: Optional[Node], query: Any) -> Node:
        if acc is None:
            return value
        return min(value, acc)

    def finalize(self, graph: Graph, values: Dict[Node, Node],
                 query: Any) -> Dict[Node, Set[Node]]:
        buckets: Dict[Node, Set[Node]] = {}
        for v, cid in values.items():
            buckets.setdefault(cid, set()).add(v)
        return buckets


class SimGASProgram(GASProgram):
    """Graph simulation: gather successors' match sets, apply the
    simulation condition, scatter to predecessors on shrink.

    Vertex value: frozenset of query nodes this vertex may match.
    """

    gather_direction = "out"   # pull match sets of successors
    scatter_direction = "in"   # wake predecessors when we shrink

    def init_value(self, graph: Graph, vertex: Node,
                   query: Graph) -> FrozenSet[Node]:
        label = graph.node_label(vertex)
        return frozenset(u for u in query.nodes()
                         if query.node_label(u) == label)

    def gather(self, graph: Graph, vertex: Node, nbr: Node,
               nbr_value: FrozenSet[Node], weight: float,
               query: Graph) -> Tuple[FrozenSet[Node], ...]:
        # Union of query nodes matched by at least one successor.
        return (nbr_value,)

    def merge(self, a: Tuple[FrozenSet[Node], ...],
              b: Tuple[FrozenSet[Node], ...]) -> Tuple[FrozenSet[Node], ...]:
        return a + b

    def apply(self, graph: Graph, vertex: Node, value: FrozenSet[Node],
              acc: Optional[Tuple[FrozenSet[Node], ...]],
              query: Graph) -> FrozenSet[Node]:
        succ_sets = acc or ()
        covered = frozenset().union(*succ_sets) if succ_sets else frozenset()
        kept = set()
        for u in value:
            # Simulation condition: every query edge (u, u2) must have some
            # successor matching u2 — i.e. u2 is covered.
            if all(u2 in covered for u2 in query.successors(u)):
                kept.add(u)
        return frozenset(kept)

    def finalize(self, graph: Graph, values: Dict[Node, FrozenSet[Node]],
                 query: Graph) -> Dict[Node, Set[Node]]:
        sim: Dict[Node, Set[Node]] = {u: set() for u in query.nodes()}
        for v, matches in values.items():
            for u in matches:
                sim[u].add(v)
        if any(not vs for vs in sim.values()):
            return {u: set() for u in query.nodes()}
        return sim


class CFGASProgram(GASProgram):
    """SGD collaborative filtering in GAS form.

    Vertex value: ``(factor tuple, epoch)``.  Gather pulls neighbor factors
    and ratings over both edge directions; apply folds them into an SGD
    step; scatter keeps both sides active until the epoch budget is spent.

    Query: a :class:`repro.pie_programs.cf.CFQuery`.
    """

    gather_direction = "both"
    scatter_direction = "both"

    def init_value(self, graph: Graph, vertex: Node, query) -> tuple:
        import random
        rng = random.Random((query.seed, vertex).__hash__())
        factor = tuple(rng.gauss(0.0, 0.1)
                       for _ in range(query.num_factors))
        return (factor, 0)

    def gather(self, graph: Graph, vertex: Node, nbr: Node, nbr_value: tuple,
               weight: float, query) -> tuple:
        return ((nbr_value[0], weight),)

    def merge(self, a: tuple, b: tuple) -> tuple:
        return a + b

    def apply(self, graph: Graph, vertex: Node, value: tuple,
              acc: Optional[tuple], query) -> tuple:
        factor, epoch = value
        if epoch >= query.max_epochs:
            return value
        lr, reg = query.learning_rate, query.regularization
        for other_f, rating in (acc or ()):
            pred = sum(a * b for a, b in zip(factor, other_f))
            err = rating - pred
            factor = tuple(
                f + lr * (err * o - reg * f)
                for f, o in zip(factor, other_f))
        return (factor, epoch + 1)

    def scatter_activates(self, graph: Graph, vertex: Node, old: tuple,
                          new: tuple, query) -> bool:
        return new[1] < query.max_epochs

    def finalize(self, graph: Graph, values: Dict[Node, tuple], query):
        return {v: np.asarray(f) for v, (f, _e) in values.items()}
