"""Per-query trace spans.

A :class:`Span` is a named, tagged timer with children; a
:class:`TraceContext` owns the root of one query's tree.  Spans are
deliberately minimal — a dict-free hot path would buy nothing here
because tracing is opt-in and the engine guards every touch with
``if trace is not None``.

Cross-process propagation works by value, not by reference: the
coordinator stamps ``StepCommand.span_id`` before shipping a step, the
worker measures its phases with bare ``perf_counter`` calls and returns
``(name, duration_s, tags)`` tuples on ``StepOutcome.spans``, and the
coordinator re-attaches them as finished child spans.  Workers never see
a Span object, so the pipe cost of tracing is a short string per command
and a few tuples per outcome.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "TraceContext"]

_ids = itertools.count(1)


def new_span_id() -> str:
    """Process-unique span id (pid-prefixed so worker ids can't collide)."""
    return f"{os.getpid():x}.{next(_ids):x}"


class Span:
    __slots__ = ("span_id", "name", "tags", "parent_id", "started_at",
                 "_t0", "duration_s", "children")

    def __init__(self, name: str, tags: Optional[Dict[str, object]] = None,
                 parent_id: Optional[str] = None) -> None:
        self.span_id = new_span_id()
        self.name = name
        self.tags: Dict[str, object] = dict(tags or {})
        self.parent_id = parent_id
        self.started_at = time.time()
        self._t0: Optional[float] = time.perf_counter()
        self.duration_s: float = 0.0
        self.children: List["Span"] = []

    # -- construction -------------------------------------------------

    def child(self, name: str, **tags) -> "Span":
        """Open a live child span (finish it yourself or via ``with``)."""
        span = Span(name, tags, parent_id=self.span_id)
        self.children.append(span)
        return span

    def record(self, name: str, duration_s: float, **tags) -> "Span":
        """Attach an already-measured child (used for worker-side spans)."""
        span = Span(name, tags, parent_id=self.span_id)
        span._t0 = None
        span.duration_s = float(duration_s)
        self.children.append(span)
        return span

    def finish(self) -> "Span":
        if self._t0 is not None:
            self.duration_s = time.perf_counter() - self._t0
            self._t0 = None
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()

    # -- introspection ------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._t0 is None

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "tags": dict(self.tags),
            "started_at": self.started_at,
            "duration_s": self.duration_s,
            "children": [child.to_dict() for child in self.children],
        }

    def format(self, indent: int = 0) -> str:
        """Human-readable one-span-per-line rendering of the subtree."""
        tag_str = ""
        if self.tags:
            tag_str = " " + " ".join(f"{k}={v}" for k, v in self.tags.items())
        lines = [f"{'  ' * indent}{self.name} "
                 f"{self.duration_s * 1e3:.3f}ms{tag_str}"]
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"dur={self.duration_s:.6f}s, "
                f"children={len(self.children)})")


class TraceContext:
    """Owns the root span of one traced query."""

    __slots__ = ("root",)

    def __init__(self, name: str = "query", **tags) -> None:
        self.root = Span(name, tags)

    def span(self, name: str, **tags) -> Span:
        return self.root.child(name, **tags)

    def finish(self) -> Span:
        return self.root.finish()

    @property
    def duration_s(self) -> float:
        return self.root.duration_s

    def to_dict(self) -> Dict[str, object]:
        return self.root.to_dict()

    def __enter__(self) -> "TraceContext":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()
