"""repro.obs — the telemetry plane.

Four pieces, all stdlib-only so any layer of the stack can import them
without cycles:

* :mod:`repro.obs.trace` — per-query span trees, propagated across the
  process-backend pipe by span id;
* :mod:`repro.obs.registry` — counters/gauges/histograms with
  Prometheus-style text exposition and JSON dump;
* :mod:`repro.obs.events` — a bounded ring of typed events with JSONL
  export (``emit()`` from anywhere, read via ``active()``);
* :mod:`repro.obs.diagnostics` — slow-query log and straggler report.
"""

from repro.obs.diagnostics import (SlowQueryEntry, SlowQueryLog,
                                   straggler_report)
from repro.obs.events import Event, EventLog, active, emit, install, use
from repro.obs.registry import (TIME_BUCKETS, Counter, Gauge, Histogram,
                                MetricsRegistry)
from repro.obs.trace import Span, TraceContext

__all__ = [
    "Span", "TraceContext",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "TIME_BUCKETS",
    "Event", "EventLog", "active", "emit", "install", "use",
    "SlowQueryEntry", "SlowQueryLog", "straggler_report",
]
