"""Metrics registry: counters, gauges, histograms, and exposition.

This module unifies the ad-hoc counters scattered across ``RunMetrics``,
``ServiceMetrics`` and the shm gauges into one snapshotable registry with
two export formats:

* ``expose_text()`` — Prometheus-style plain text, one sample per line
  (histograms expand into ``_bucket{le=...}`` / ``_sum`` / ``_count``);
* ``to_json()`` — a nested dict safe for ``json.dumps``.

The registry never becomes the source of truth: the dataclasses keep
their attribute API, and ``MetricsRegistry.from_object`` snapshots any
dataclass of numeric fields by reflection.  That way a new counter added
to ``ServiceMetrics`` shows up in the exposition without touching this
file.

Only the standard library is used here (``repro.obs`` must stay
import-cycle-free: ``runtime.metrics`` imports ``Histogram`` from it).
"""

from __future__ import annotations

import dataclasses
import json
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "TIME_BUCKETS", "Counter", "Gauge", "Histogram", "MetricsRegistry",
]

# Default latency buckets (seconds): spans ~1ms to 10s, which covers a
# worker superstep on the small end and a cold whole-graph recompute on
# the large end.
TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


def _fmt(value: float) -> str:
    """Format a sample value the way Prometheus text format expects."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing sample."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def set(self, value: float) -> None:
        """Snapshot-style assignment (used by ``from_object``)."""
        self.value = value

    def to_json(self):
        return self.value

    def expose(self) -> List[str]:
        return [f"{self.name} {_fmt(self.value)}"]


class Gauge:
    """A sample that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def to_json(self):
        return self.value

    def expose(self) -> List[str]:
        return [f"{self.name} {_fmt(self.value)}"]


class Histogram:
    """Fixed-bucket histogram with cumulative-bucket exposition.

    Picklable and mergeable: process-backend workers can observe into a
    histogram and ship it back, and ``ServiceMetrics`` folds per-run
    histograms into service-lifetime ones via :meth:`merge`.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = TIME_BUCKETS,
                 name: str = "", help: str = "") -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.bounds = bounds
        # counts[i] is the number of samples <= bounds[i]; the final slot
        # counts samples above every bound (the +Inf bucket).
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            # Re-observe through the sum/count only: bucket layouts that
            # disagree cannot be added bin-wise.  In practice every
            # histogram in the tree uses TIME_BUCKETS, so this path is a
            # safety net, not a hot path.
            self.sum += other.sum
            self.count += other.count
            self.counts[-1] += other.count
            return
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count

    def copy(self) -> "Histogram":
        dup = Histogram(self.bounds, name=self.name, help=self.help)
        dup.counts = list(self.counts)
        dup.sum = self.sum
        dup.count = self.count
        return dup

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket boundaries (upper bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts[:-1]):
            seen += c
            if seen >= target:
                return self.bounds[i]
        return float("inf")

    def to_json(self):
        return {
            "buckets": {_fmt(b): c
                        for b, c in zip(self.bounds, self.counts[:-1])},
            "inf": self.counts[-1],
            "sum": self.sum,
            "count": self.count,
        }

    def expose(self) -> List[str]:
        lines: List[str] = []
        cumulative = 0
        for bound, c in zip(self.bounds, self.counts[:-1]):
            cumulative += c
            lines.append(
                f'{self.name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        cumulative += self.counts[-1]
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{self.name}_sum {_fmt(self.sum)}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


class MetricsRegistry:
    """An ordered, thread-safe collection of named metrics."""

    def __init__(self) -> None:
        self._metrics: "Dict[str, object]" = {}
        self._lock = threading.Lock()

    # -- get-or-create accessors ------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(self, name: str,
                  buckets: Sequence[float] = TIME_BUCKETS,
                  help: str = "") -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(buckets, name=name, help=help)
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    def register(self, metric) -> None:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None and existing is not metric:
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric

    def _get_or_create(self, name: str, cls, help: str = ""):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help=help)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    # -- introspection ----------------------------------------------

    def names(self) -> List[str]:
        with self._lock:
            return list(self._metrics)

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    # -- export ------------------------------------------------------

    def expose_text(self) -> str:
        """Prometheus-style text exposition (one trailing newline)."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.expose())
        return "\n".join(lines) + "\n"

    def to_json(self) -> Dict[str, object]:
        with self._lock:
            return {name: metric.to_json()
                    for name, metric in self._metrics.items()}

    def dump_json(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)

    # -- reflection snapshot -----------------------------------------

    @classmethod
    def from_object(cls, obj, prefix: str = "repro_",
                    gauge_fields: Iterable[str] = (),
                    skip: Iterable[str] = (),
                    help_map: Optional[Mapping[str, str]] = None,
                    ) -> "MetricsRegistry":
        """Snapshot a dataclass's numeric fields into a fresh registry.

        int/float fields become counters (or gauges when named in
        ``gauge_fields``); ``Histogram`` fields are copied in whole;
        strings, lists and other shapes are skipped.  Reflection means a
        field added to the dataclass later is exported automatically.
        """
        gauges = set(gauge_fields)
        skipped = set(skip)
        helps = dict(help_map or {})
        reg = cls()
        for f in dataclasses.fields(obj):
            if f.name in skipped:
                continue
            value = getattr(obj, f.name)
            name = prefix + f.name
            note = helps.get(f.name, "")
            if isinstance(value, Histogram):
                dup = value.copy()
                dup.name = name
                if note:
                    dup.help = note
                reg.register(dup)
            elif isinstance(value, bool):
                reg.gauge(name, help=note).set(1.0 if value else 0.0)
            elif isinstance(value, (int, float)):
                if f.name in gauges:
                    reg.gauge(name, help=note).set(float(value))
                else:
                    reg.counter(name, help=note).set(float(value))
        return reg
