"""Structured event log: a bounded ring buffer of typed events.

Emission sites across the stack (admission shedding, retries, breaker
transitions, shm fallbacks, WAL appends, replica syncs, failover
epochs) call the module-level :func:`emit`, which lands in the active
:class:`EventLog`.  The log is a fixed-capacity deque — old events
rotate out, but per-kind totals survive rotation so counts stay honest.

The install/active pattern mirrors ``repro.resilience.faults``: the
default process-wide log is always present (emitting is never an
error), and tests swap in a private log via :func:`use`.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["Event", "EventLog", "active", "install", "use", "emit"]


class Event:
    __slots__ = ("ts", "kind", "fields")

    def __init__(self, ts: float, kind: str, fields: Dict[str, object]):
        self.ts = ts
        self.kind = kind
        self.fields = fields

    def to_dict(self) -> Dict[str, object]:
        out = {"ts": self.ts, "kind": self.kind}
        out.update(self.fields)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.kind!r}, {self.fields!r})"


class EventLog:
    """Thread-safe bounded ring of :class:`Event` with JSONL export."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: "deque[Event]" = deque(maxlen=capacity)
        self._counts: Dict[str, int] = {}
        self._total = 0
        self._lock = threading.Lock()

    def emit(self, kind: str, /, **fields) -> Event:
        event = Event(time.time(), kind, fields)
        with self._lock:
            self._events.append(event)
            self._counts[kind] = self._counts.get(kind, 0) + 1
            self._total += 1
        return event

    # -- reads --------------------------------------------------------

    def events(self, kind: Optional[str] = None,
               limit: Optional[int] = None) -> List[Event]:
        with self._lock:
            out = [e for e in self._events
                   if kind is None or e.kind == kind]
        if limit is not None:
            out = out[-limit:]
        return out

    def tail(self, n: int) -> List[Event]:
        return self.events(limit=n)

    def counts(self) -> Dict[str, int]:
        """Per-kind totals since creation (survive ring rotation)."""
        with self._lock:
            return dict(self._counts)

    @property
    def total(self) -> int:
        with self._lock:
            return self._total

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- export / lifecycle -------------------------------------------

    def export_jsonl(self, path: Optional[str] = None) -> str:
        """Serialize buffered events as JSON Lines; optionally write out."""
        lines = [json.dumps(e.to_dict(), sort_keys=True, default=repr)
                 for e in self.events()]
        blob = "\n".join(lines) + ("\n" if lines else "")
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(blob)
        return blob

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._counts.clear()
            self._total = 0


_active = EventLog()
_swap_lock = threading.Lock()


def active() -> EventLog:
    """The process-wide event log receiving :func:`emit` calls."""
    return _active


def install(log: EventLog) -> EventLog:
    """Swap the active log; returns the previous one."""
    global _active
    with _swap_lock:
        previous = _active
        _active = log
        return previous


@contextlib.contextmanager
def use(log: EventLog):
    """Scoped install (for tests): the previous log is restored on exit."""
    previous = install(log)
    try:
        yield log
    finally:
        install(previous)


def emit(kind: str, /, **fields) -> Event:
    """Emit onto the active log (never raises on a full ring)."""
    return _active.emit(kind, **fields)
