"""Straggler and slow-query diagnostics.

Two consumers of the telemetry the rest of the stack produces:

* :class:`SlowQueryLog` — bounded ring of queries whose wall clock
  crossed a configurable threshold, each entry keeping the full span
  tree so "where did this one go" is answerable after the fact;
* :func:`straggler_report` — folds ``RunMetrics.per_superstep`` skew
  data into a per-worker verdict (who was slowest, how often, how bad).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.obs.trace import Span

__all__ = ["SlowQueryEntry", "SlowQueryLog", "straggler_report"]


class SlowQueryEntry:
    __slots__ = ("ts", "program", "graph", "query", "duration_s", "trace")

    def __init__(self, program: str, graph: str, query: object,
                 duration_s: float, trace: Optional[Span]) -> None:
        self.ts = time.time()
        self.program = program
        self.graph = graph
        self.query = query
        self.duration_s = duration_s
        self.trace = trace

    def to_dict(self) -> Dict[str, object]:
        return {
            "ts": self.ts,
            "program": self.program,
            "graph": self.graph,
            "query": repr(self.query),
            "duration_s": self.duration_s,
            "trace": self.trace.to_dict() if self.trace is not None else None,
        }


class SlowQueryLog:
    """Bounded, thread-safe ring of slow queries with their span trees."""

    def __init__(self, threshold_s: float, capacity: int = 64) -> None:
        if threshold_s < 0:
            raise ValueError("threshold_s must be >= 0")
        self.threshold_s = threshold_s
        self._entries: "deque[SlowQueryEntry]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._observed = 0

    def offer(self, program: str, graph: str, query: object,
              duration_s: float,
              trace: Optional[Span] = None) -> Optional[SlowQueryEntry]:
        """Record the query iff it crossed the threshold."""
        with self._lock:
            self._observed += 1
            if duration_s < self.threshold_s:
                return None
            entry = SlowQueryEntry(program, graph, query, duration_s, trace)
            self._entries.append(entry)
            return entry

    def entries(self) -> List[SlowQueryEntry]:
        with self._lock:
            return list(self._entries)

    def to_dicts(self) -> List[Dict[str, object]]:
        return [e.to_dict() for e in self.entries()]

    @property
    def observed(self) -> int:
        with self._lock:
            return self._observed

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


def straggler_report(metrics) -> Dict[str, object]:
    """Summarize per-superstep skew from a ``RunMetrics``.

    Returns supersteps seen, max/mean skew (max worker time over mean
    worker time per step), how many steps crossed the straggler
    threshold, per-worker slowest-counts, and the prime suspect — the
    worker that was slowest most often (None when nothing is skewed).
    """
    steps = getattr(metrics, "per_superstep", None) or []
    skews: List[float] = []
    slowest_counts: Dict[int, int] = {}
    for entry in steps:
        skew = entry.get("skew")
        if skew is not None:
            skews.append(float(skew))
        slowest = entry.get("slowest_worker")
        if slowest is not None and slowest >= 0:
            key = int(slowest)
            slowest_counts[key] = slowest_counts.get(key, 0) + 1
    suspect: Optional[int] = None
    if slowest_counts and max(skews, default=1.0) > 1.0:
        suspect = max(slowest_counts, key=lambda w: slowest_counts[w])
    return {
        "supersteps": len(steps),
        "max_skew": max(skews, default=1.0),
        "mean_skew": (sum(skews) / len(skews)) if skews else 1.0,
        "straggler_steps": int(getattr(metrics, "straggler_steps", 0)),
        "slowest_counts": slowest_counts,
        "suspect": suspect,
    }
