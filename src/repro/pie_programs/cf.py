"""PIE program for collaborative filtering (paper Section 5.3).

``PEval`` is a mini-batch SGD epoch (Koren et al.); ``IncEval`` is ISGD
(Vinagre et al.), re-fitting only ratings incident to border factors that
arrived in the message; ``Assemble`` unions the factor vectors.

Message preamble: ``v.x = (t, v.f)`` — a timestamp and factor vector per
shared (border) node, candidate set = the border nodes, aggregated by
``max`` on ``(t, v.f)`` (newest epoch wins; the vector order breaks
same-epoch ties deterministically).

Termination follows the paper: "a predetermined maximum number of
supersteps ... or when the error is smaller than a threshold" — both are
query parameters; once a fragment stops updating, its parameters stop
changing and the fixpoint is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.aggregators import MaxAggregator
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Node
from repro.partition.base import Fragment, Fragmentation
from repro.sequential.cf import FactorModel, Rating, rmse, sgd_epoch
from repro.sequential.inc_cf import isgd_update

__all__ = ["CFQuery", "CFProgram", "CFState"]


@dataclass(frozen=True)
class CFQuery:
    """CF training configuration.

    Attributes
    ----------
    num_factors: latent dimension of ``u.f`` / ``p.f``.
    learning_rate, regularization: the λ's of update equations (1)–(2).
    max_epochs: superstep budget (paper's GraphLab-style termination).
    target_rmse: optional early-stop threshold on local training RMSE.
    seed: factor initialization seed.
    """

    num_factors: int = 8
    learning_rate: float = 0.02
    regularization: float = 0.05
    max_epochs: int = 10
    target_rmse: Optional[float] = None
    seed: int = 0


@dataclass
class CFState:
    """Per-fragment state: local model, training slice, epoch counter."""

    model: Optional[FactorModel] = None
    ratings: List[Rating] = field(default_factory=list)
    epoch: int = 0
    converged: bool = False


class CFProgram(PIEProgram):
    """Query: :class:`CFQuery`.  Answer: ``{node: factor vector}``."""

    name = "CF"
    # Lexicographic max on (timestamp, vector): newest epoch wins and the
    # vector order breaks same-epoch ties deterministically, so every real
    # change advances the partial order (fragments may desync by a round).
    aggregator = MaxAggregator()
    route_to = "holders"

    def init_state(self, query: CFQuery, fragment: Fragment) -> CFState:
        state = CFState()
        state.model = FactorModel(query.num_factors, seed=query.seed)
        # Training slice: every rating edge stored in this fragment
        # (edge-cut places each user's ratings at the user's owner).
        state.ratings = [(u, p, w) for u, p, w in fragment.graph.edges()]
        return state

    # ------------------------------------------------------------------
    def _check_convergence(self, query: CFQuery, state: CFState) -> None:
        if state.epoch >= query.max_epochs:
            state.converged = True
        elif query.target_rmse is not None and state.ratings:
            if rmse(state.ratings, state.model) <= query.target_rmse:
                state.converged = True

    def peval(self, query: CFQuery, fragment: Fragment,
              state: CFState) -> None:
        if state.converged:
            return
        state.epoch += 1
        sgd_epoch(state.ratings, state.model, lr=query.learning_rate,
                  reg=query.regularization, timestamp=state.epoch,
                  shuffle_seed=query.seed + state.epoch)
        self._check_convergence(query, state)

    def inceval(self, query: CFQuery, fragment: Fragment, state: CFState,
                message: ParamUpdates) -> None:
        if state.converged:
            return
        affected: Set[Node] = set()
        for (v, _name), (t, vec) in message.items():
            ts = state.model.timestamps.get(v, -1)
            # Newer wins; coordinator-resolved ties (same epoch, different
            # winning vector) are adopted too, else lockstep fragments
            # would never exchange factors.
            if t > ts:
                state.model.set(v, np.asarray(vec, dtype=float), t)
                affected.add(v)
            elif t == ts:
                current = state.model.get(v)
                candidate = np.asarray(vec, dtype=float)
                if not np.array_equal(current, candidate):
                    state.model.set(v, candidate, t)
                    affected.add(v)
        state.epoch += 1
        isgd_update(state.ratings, state.model, affected,
                    lr=query.learning_rate, reg=query.regularization,
                    timestamp=state.epoch)
        self._check_convergence(query, state)

    def apply_message(self, query: CFQuery, fragment: Fragment,
                      state: CFState, message: ParamUpdates) -> None:
        # NI mode: install newest border factors; PEval re-runs an epoch.
        for (v, _name), (t, vec) in message.items():
            if t > state.model.timestamps.get(v, -1):
                state.model.set(v, np.asarray(vec, dtype=float), t)

    # ------------------------------------------------------------------
    def read_update_params(self, query: CFQuery, fragment: Fragment,
                           state: CFState) -> ParamUpdates:
        """(t, v.f) for border nodes touched by local training.

        Values are plain tuples so the engine's equality diffing and the
        timestamp aggregator work on comparable data.
        """
        params: ParamUpdates = {}
        for v in fragment.border_nodes:
            t = state.model.timestamps.get(v)
            if t:  # untouched nodes (t absent or 0) carry no information
                vec = tuple(float(x) for x in state.model.factors[v])
                params[(v, "f")] = (t, vec)
        return params

    def assemble(self, query: CFQuery, fragmentation: Fragmentation,
                 states: Dict[int, CFState]) -> Dict[Node, np.ndarray]:
        """Union of factor vectors; border conflicts resolved by newest
        timestamp, matching the message aggregator."""
        answer: Dict[Node, np.ndarray] = {}
        best_t: Dict[Node, int] = {}
        for frag in fragmentation:
            model = states[frag.fid].model
            for v, vec in model.factors.items():
                t = model.timestamps.get(v, 0)
                if v not in answer or t > best_t[v]:
                    answer[v] = np.asarray(vec, dtype=float)
                    best_t[v] = t
        return answer
