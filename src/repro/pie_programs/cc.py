"""PIE program for connected components (paper Section 5.2).

``PEval`` computes fragment-local components with a linear traversal and
links every member to a component root; ``IncEval`` lowers component ids in
``O(|AFF|)`` by following the root links (the paper's bounded incremental
step); ``Assemble`` buckets nodes by final component id.

Message preamble: integer ``v.cid`` per node, candidate set = the border
nodes, ``aggregateMsg = min``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.core.aggregators import MinAggregator
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Node
from repro.partition.base import Fragment, Fragmentation
from repro.sequential.wcc import LocalComponents

__all__ = ["CCProgram", "CCState"]


@dataclass
class CCState:
    """Per-fragment state: the local component structure."""

    comps: Optional[LocalComponents] = None


class CCProgram(PIEProgram):
    """Query: ignored (CC is a whole-graph computation).

    Answer: ``{component id: set of nodes}``.
    """

    name = "CC"
    aggregator = MinAggregator()
    route_to = "holders"

    def init_state(self, query, fragment: Fragment) -> CCState:
        return CCState()

    def peval(self, query, fragment: Fragment, state: CCState) -> None:
        old_cids = state.comps.cid if state.comps is not None else None
        state.comps = LocalComponents(fragment.graph)
        if old_cids:
            # NI-mode re-run / failure replay: never regress below ids
            # already learned from other fragments (monotonicity).
            for v, c in old_cids.items():
                if c < state.comps.cid.get(v, c):
                    state.comps.lower_cid(v, c)

    def inceval(self, query, fragment: Fragment, state: CCState,
                message: ParamUpdates) -> None:
        for (v, _name), cid in message.items():
            state.comps.lower_cid(v, cid)

    def apply_message(self, query, fragment: Fragment, state: CCState,
                      message: ParamUpdates) -> None:
        # NI mode: record incoming ids; the PEval re-run folds them in.
        for (v, _name), cid in message.items():
            if state.comps is not None and cid < state.comps.cid.get(v, cid):
                state.comps.cid[v] = cid

    def on_graph_update(self, query, fragment: Fragment, state: CCState,
                        inserted) -> None:
        """Inserted edges merge local components (weighted union)."""
        for u, v, _w in inserted:
            state.comps.add_edge(u, v)

    def read_update_params(self, query, fragment: Fragment,
                           state: CCState) -> ParamUpdates:
        cids = state.comps.cid
        return {(v, "cid"): cids[v] for v in fragment.border_nodes}

    def assemble(self, query, fragmentation: Fragmentation,
                 states: Dict[int, CCState]) -> Dict[Node, Set[Node]]:
        buckets: Dict[Node, Set[Node]] = {}
        for frag in fragmentation:
            cids = states[frag.fid].comps.cid
            for v in frag.owned:
                buckets.setdefault(cids[v], set()).add(v)
        return buckets
