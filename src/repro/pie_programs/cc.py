"""PIE program for connected components (paper Section 5.2).

``PEval`` computes fragment-local components and links every member to a
component root; ``IncEval`` lowers component ids in ``O(|AFF|)`` by
following the root links (the paper's bounded incremental step);
``Assemble`` buckets nodes by final component id.

With ``use_csr`` on (the default) ``PEval`` finds the local components by
min-label propagation over the fragment's CSR snapshot
(:func:`repro.kernels.csr_components`) instead of a Python BFS; the
root/member bookkeeping and the bounded ``IncEval`` relabeling are shared
— ``lower_cid`` is already O(|affected component|), so only the
whole-fragment batch pass gains from vectorization.  Changed border cids
are tracked as a dirty set feeding ``read_changed_params``.

Message preamble: integer ``v.cid`` per node, candidate set = the border
nodes, ``aggregateMsg = min``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from repro.core.aggregators import MinAggregator
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Node
from repro.kernels import csr_components, csr_region_components
from repro.partition.base import Fragment, Fragmentation
from repro.sequential.wcc import LocalComponents

__all__ = ["CCProgram", "CCState"]


@dataclass
class CCState:
    """Per-fragment state: the local component structure."""

    comps: Optional[LocalComponents] = None
    #: border nodes whose cid changed since the last report
    dirty: Set[Node] = field(default_factory=set)


class CCProgram(PIEProgram):
    """Query: ignored (CC is a whole-graph computation).

    Answer: ``{component id: set of nodes}``.
    """

    name = "CC"
    aggregator = MinAggregator()
    supports_csr = True
    route_to = "holders"

    def __init__(self, use_csr: bool = True):
        self.use_csr = use_csr

    def init_state(self, query, fragment: Fragment) -> CCState:
        return CCState()

    def peval(self, query, fragment: Fragment, state: CCState) -> None:
        old_cids = state.comps.cid if state.comps is not None else None
        if self.use_csr:
            state.comps = self._local_components_csr(fragment)
        else:
            state.comps = LocalComponents(fragment.graph)
        if old_cids:
            # NI-mode re-run / failure replay: never regress below ids
            # already learned from other fragments (monotonicity).
            for v, c in old_cids.items():
                if c < state.comps.cid.get(v, c):
                    state.comps.lower_cid(v, c)
        cids = state.comps.cid
        for v in fragment.inner:
            if old_cids is None or cids[v] != old_cids.get(v):
                state.dirty.add(v)
        for v in fragment.outer:
            if old_cids is None or cids[v] != old_cids.get(v):
                state.dirty.add(v)

    @staticmethod
    def _local_components_csr(fragment: Fragment) -> LocalComponents:
        csr = fragment.csr()
        if not csr.n:
            return LocalComponents.from_partition([])
        comp = csr_components(csr)
        order = np.argsort(comp, kind="stable")
        boundaries = np.nonzero(np.diff(comp[order]))[0] + 1
        node_of = csr.node_of
        groups = [[node_of[i] for i in idx.tolist()]
                  for idx in np.split(order, boundaries)]
        return LocalComponents.from_partition(groups)

    def inceval(self, query, fragment: Fragment, state: CCState,
                message: ParamUpdates) -> None:
        for (v, _name), cid in message.items():
            for m in state.comps.lower_cid(v, cid):
                if m in fragment.inner or m in fragment.outer:
                    state.dirty.add(m)

    def apply_message(self, query, fragment: Fragment, state: CCState,
                      message: ParamUpdates) -> None:
        # NI mode: record incoming ids; the PEval re-run folds them in.
        for (v, _name), cid in message.items():
            if state.comps is not None and cid < state.comps.cid.get(v, cid):
                state.comps.cid[v] = cid
                if v in fragment.inner or v in fragment.outer:
                    state.dirty.add(v)

    def maintainable(self, delta) -> bool:
        """Every batch is maintainable: CC ignores weights entirely, so
        any reweight is answer-preserving; insertions merge through
        :meth:`on_graph_update`; deletions go through the bounded
        affected-region path (condemn + rebuild the touched
        components)."""
        return True

    def invalidates(self, delta) -> bool:
        """Only deletions (and the mirror retirements they cause) can
        split components; reweight-only batches stay on the monotone
        fold."""
        return delta.has_deletions

    def on_graph_update(self, query, fragment: Fragment, state: CCState,
                        delta) -> None:
        """Inserted edges merge local components (weighted union);
        reweights need no work at all."""
        edges = delta.insertions if hasattr(delta, "insertions") else delta
        for u, v, _w in edges:
            for m in state.comps.add_edge(u, v):
                if m in fragment.inner or m in fragment.outer:
                    state.dirty.add(m)

    # ------------------------------------------------------------------
    # Bounded non-monotone maintenance (delete-aware IncEval)
    # ------------------------------------------------------------------
    def affected_seeds(self, query, fragment: Fragment, state: CCState,
                       delta) -> Set[Node]:
        """Direct hits, filtered by a local reconnection check: a
        deleted edge whose endpoints are still connected on the
        (already-mutated) local graph cannot change any component —
        local connectivity implies global connectivity, so the old cids
        stay exact and the deletion seeds nothing.  Only deletions that
        genuinely sever their endpoints locally condemn, and membership
        carries no provenance to narrow the blast radius below the
        endpoint's whole *local* component (the cross-fragment closure
        grows this to the old global component, which is exactly
        ``AFF`` for CC).  ``Graph.neighbors`` is symmetric also on
        directed graphs, matching the weak-connectivity relation the
        component structure is built on, so the filter applies to both
        orientations."""
        comps = state.comps
        graph = fragment.graph
        seeds: Set[Node] = set()
        for u, v, _w in delta.deletions:
            if self._locally_reconnected(comps, graph, u, v):
                continue
            for x in (u, v):
                if comps is not None and x in comps.cid:
                    seeds.update(comps.component_members(x))
                else:
                    seeds.add(x)
        seeds.update(delta.retired_nodes)
        return seeds

    @staticmethod
    def _locally_reconnected(comps: Optional[LocalComponents], graph,
                             u: Node, v: Node) -> bool:
        """BFS from ``u`` toward ``v`` on the mutated local graph,
        restricted to the endpoints' old local component (the search may
        not leave it: the component was closed under local edges and the
        batch's insertions are folded separately).  Early exit on
        reaching ``v``; worst case — the endpoints really are severed —
        costs one sweep of the component about to be condemned anyway."""
        if comps is None or u not in comps.cid or v not in comps.cid:
            return False
        if not (graph.has_node(u) and graph.has_node(v)):
            return False
        target_cid = comps.cid[u]
        if comps.cid[v] != target_cid:
            return False
        cid = comps.cid
        seen = {u}
        dq = deque([u])
        while dq:
            x = dq.popleft()
            for y in graph.neighbors(x):
                if y == v:
                    return True
                if y not in seen and cid.get(y) == target_cid:
                    seen.add(y)
                    dq.append(y)
        return False

    def affected_seeds_global(self, query, fragments, states,
                              touched) -> Dict[int, Set[Node]]:
        """Driver-side batch seeding: exact split detection.

        Whether a deletion splits a component is a *global* question —
        a pair severed inside one fragment is routinely still connected
        through a path crossing other fragments, and condemning on
        local evidence resets (and re-labels) the whole old component
        for nothing.  Bounded maintenance runs on the driver with every
        fragment in reach, so the question is answered exactly: a
        deleted edge seeds only when its endpoints are disconnected in
        the union adjacency of all fragments (checked once per distinct
        edge, not per recording fragment).  Skipped deletions leave the
        local component structures coarser than the mutated graph,
        which is safe — every stored component remains a subset of one
        true global component, so cid propagation stays exact and a
        later real split still condemns (conservatively coarsely) and
        rebuilds exactly.
        """
        severed: Dict[frozenset, bool] = {}
        for fid, delta in touched.items():
            for u, v, _w in delta.deletions:
                pair = frozenset((u, v))
                if pair not in severed:
                    severed[pair] = not self._globally_reconnected(
                        fragments, u, v)
        seeds: Dict[int, Set[Node]] = {}
        for fid, delta in touched.items():
            found: Set[Node] = set()
            comps = states[fid].comps
            graph = fragments[fid].graph
            for u, v, _w in delta.deletions:
                if not severed[frozenset((u, v))]:
                    continue
                for x in (u, v):
                    if comps is not None and x in comps.cid:
                        found.update(comps.component_members(x))
                    elif graph.has_node(x):
                        found.add(x)
            # Retired mirrors are *not* seeded here: with split
            # detection exact, a surviving component keeps its cids and
            # the departed copy is merely detached from the local
            # structure (apply_nonmonotone); its border claim retracts
            # through the rebaseline tombstone.
            seeds[fid] = found
        return seeds

    @staticmethod
    def _globally_reconnected(fragments, u: Node, v: Node) -> bool:
        """Bidirectional BFS between ``u`` and ``v`` on the union
        adjacency of all fragments, expanding the smaller frontier
        first.  Reconnected pairs meet after exploring a small ball
        around each endpoint; severed pairs exhaust the smaller side of
        the cut — typically the pendant piece a bridge cuts off — so
        both verdicts stay far below one component sweep."""
        if u == v:
            return True
        holders = [f.graph for f in fragments]

        def neighbors(x: Node):
            for g in holders:
                if g.has_node(x):
                    yield from g.neighbors(x)

        side_u, side_v = {u}, {v}
        frontier_u, frontier_v = [u], [v]
        while frontier_u and frontier_v:
            if len(frontier_u) <= len(frontier_v):
                frontier, side, other = frontier_u, side_u, side_v
            else:
                frontier, side, other = frontier_v, side_v, side_u
            fresh: list = []
            for x in frontier:
                for y in neighbors(x):
                    if y in other:
                        return True
                    if y not in side:
                        side.add(y)
                        fresh.append(y)
            if frontier is frontier_u:
                frontier_u = fresh
            else:
                frontier_v = fresh
        return False

    def expand_affected(self, query, fragment: Fragment, state: CCState,
                        nodes: Set[Node]) -> Set[Node]:
        """A vertex condemned anywhere condemns its whole local
        component here: local components are closed under local edges,
        and shared border copies chain the closure across fragments
        until the old global component is covered.  A node already in
        ``grown`` had its whole component enumerated (member lists are
        closed), so each distinct component is walked once — the
        closure costs ``O(|nodes| + |region|)``, not
        ``O(|nodes| * |region|)``.  The dedup is by membership, not by
        cid: distinct local components routinely share one *global*
        label."""
        comps = state.comps
        grown: Set[Node] = set()
        for v in nodes:
            if comps is not None and v in comps.cid:
                if v not in grown:
                    grown.update(comps.component_members(v))
            elif fragment.graph.has_node(v):
                grown.add(v)
        return grown

    def apply_nonmonotone(self, query, fragment: Fragment, state: CCState,
                          delta, affected: Set[Node]) -> None:
        """Drop the condemned components, re-discover components inside
        the region on the mutated graph (fresh local-minimum cids — the
        retraction of any split-off global minimum), then fold the
        batch's insertions; the resumed message fixpoint re-derives the
        global minima."""
        comps = state.comps
        if comps is None:
            comps = state.comps = LocalComponents(fragment.graph)
        comps.drop_components(affected)
        if delta is not None:
            # Retired copies outside the condemned region (their
            # component survived the batch globally) leave quietly.
            for v in delta.retired_nodes:
                if v not in affected:
                    comps.detach(v)
        region = {v for v in affected if fragment.graph.has_node(v)}
        if region:
            if self.use_csr and fragment.csr_cached:
                self._rebuild_region_csr(fragment, comps, region)
            else:
                comps.rebuild_region(fragment.graph, region)
        if delta is not None:
            inner, outer = fragment.inner, fragment.outer
            for u, v, _w in delta.insertions:
                for m in comps.add_edge(u, v):
                    if m in inner or m in outer:
                        state.dirty.add(m)

    @staticmethod
    def _rebuild_region_csr(fragment: Fragment, comps: LocalComponents,
                            region: Set[Node]) -> None:
        csr = fragment.csr()
        id_of = csr.id_of
        node_of = csr.node_of
        groups = csr_region_components(csr, [id_of[v] for v in region])
        for group in groups:
            comps.install([node_of[i] for i in group.tolist()])

    def read_update_params(self, query, fragment: Fragment,
                           state: CCState) -> ParamUpdates:
        # .get(v, v): a node that joined via a graph update without any
        # local edge is locally its own singleton component.
        cids = state.comps.cid
        return {(v, "cid"): cids.get(v, v) for v in fragment.border_nodes}

    def report_entries(self, query, fragment: Fragment, state: CCState,
                       nodes: Set[Node]) -> ParamUpdates:
        """Per-node restriction of :meth:`read_update_params` — the
        session's incremental rebaseline probes exactly the vertices a
        non-monotone batch could have touched."""
        cids = state.comps.cid if state.comps is not None else {}
        inner, outer = fragment.inner, fragment.outer
        return {(v, "cid"): cids.get(v, v) for v in nodes
                if v in inner or v in outer}

    def read_changed_params(self, query, fragment: Fragment,
                            state: CCState) -> ParamUpdates:
        if not state.dirty:
            return {}
        dirty, state.dirty = state.dirty, set()
        cids = state.comps.cid
        return {(v, "cid"): cids.get(v, v) for v in dirty}

    def assemble(self, query, fragmentation: Fragmentation,
                 states: Dict[int, CCState]) -> Dict[Node, Set[Node]]:
        buckets: Dict[Node, Set[Node]] = {}
        for frag in fragmentation:
            cids = states[frag.fid].comps.cid
            for v in frag.owned:
                buckets.setdefault(cids.get(v, v), set()).add(v)
        return buckets
