"""PIE program for connected components (paper Section 5.2).

``PEval`` computes fragment-local components and links every member to a
component root; ``IncEval`` lowers component ids in ``O(|AFF|)`` by
following the root links (the paper's bounded incremental step);
``Assemble`` buckets nodes by final component id.

With ``use_csr`` on (the default) ``PEval`` finds the local components by
min-label propagation over the fragment's CSR snapshot
(:func:`repro.kernels.csr_components`) instead of a Python BFS; the
root/member bookkeeping and the bounded ``IncEval`` relabeling are shared
— ``lower_cid`` is already O(|affected component|), so only the
whole-fragment batch pass gains from vectorization.  Changed border cids
are tracked as a dirty set feeding ``read_changed_params``.

Message preamble: integer ``v.cid`` per node, candidate set = the border
nodes, ``aggregateMsg = min``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from repro.core.aggregators import MinAggregator
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Node
from repro.kernels import csr_components
from repro.partition.base import Fragment, Fragmentation
from repro.sequential.wcc import LocalComponents

__all__ = ["CCProgram", "CCState"]


@dataclass
class CCState:
    """Per-fragment state: the local component structure."""

    comps: Optional[LocalComponents] = None
    #: border nodes whose cid changed since the last report
    dirty: Set[Node] = field(default_factory=set)


class CCProgram(PIEProgram):
    """Query: ignored (CC is a whole-graph computation).

    Answer: ``{component id: set of nodes}``.
    """

    name = "CC"
    aggregator = MinAggregator()
    supports_csr = True
    route_to = "holders"

    def __init__(self, use_csr: bool = True):
        self.use_csr = use_csr

    def init_state(self, query, fragment: Fragment) -> CCState:
        return CCState()

    def peval(self, query, fragment: Fragment, state: CCState) -> None:
        old_cids = state.comps.cid if state.comps is not None else None
        if self.use_csr:
            state.comps = self._local_components_csr(fragment)
        else:
            state.comps = LocalComponents(fragment.graph)
        if old_cids:
            # NI-mode re-run / failure replay: never regress below ids
            # already learned from other fragments (monotonicity).
            for v, c in old_cids.items():
                if c < state.comps.cid.get(v, c):
                    state.comps.lower_cid(v, c)
        cids = state.comps.cid
        for v in fragment.inner:
            if old_cids is None or cids[v] != old_cids.get(v):
                state.dirty.add(v)
        for v in fragment.outer:
            if old_cids is None or cids[v] != old_cids.get(v):
                state.dirty.add(v)

    @staticmethod
    def _local_components_csr(fragment: Fragment) -> LocalComponents:
        csr = fragment.csr()
        if not csr.n:
            return LocalComponents.from_partition([])
        comp = csr_components(csr)
        order = np.argsort(comp, kind="stable")
        boundaries = np.nonzero(np.diff(comp[order]))[0] + 1
        node_of = csr.node_of
        groups = [[node_of[i] for i in idx.tolist()]
                  for idx in np.split(order, boundaries)]
        return LocalComponents.from_partition(groups)

    def inceval(self, query, fragment: Fragment, state: CCState,
                message: ParamUpdates) -> None:
        for (v, _name), cid in message.items():
            for m in state.comps.lower_cid(v, cid):
                if m in fragment.inner or m in fragment.outer:
                    state.dirty.add(m)

    def apply_message(self, query, fragment: Fragment, state: CCState,
                      message: ParamUpdates) -> None:
        # NI mode: record incoming ids; the PEval re-run folds them in.
        for (v, _name), cid in message.items():
            if state.comps is not None and cid < state.comps.cid.get(v, cid):
                state.comps.cid[v] = cid
                if v in fragment.inner or v in fragment.outer:
                    state.dirty.add(v)

    def maintainable(self, delta) -> bool:
        """CC ignores weights entirely, so any reweight (increase or
        decrease) is answer-preserving and maintainable; only deletions
        can split components and force the recompute fallback."""
        return not delta.has_deletions

    def on_graph_update(self, query, fragment: Fragment, state: CCState,
                        delta) -> None:
        """Inserted edges merge local components (weighted union);
        reweights need no work at all."""
        edges = delta.insertions if hasattr(delta, "insertions") else delta
        for u, v, _w in edges:
            for m in state.comps.add_edge(u, v):
                if m in fragment.inner or m in fragment.outer:
                    state.dirty.add(m)

    def read_update_params(self, query, fragment: Fragment,
                           state: CCState) -> ParamUpdates:
        # .get(v, v): a node that joined via a graph update without any
        # local edge is locally its own singleton component.
        cids = state.comps.cid
        return {(v, "cid"): cids.get(v, v) for v in fragment.border_nodes}

    def read_changed_params(self, query, fragment: Fragment,
                            state: CCState) -> ParamUpdates:
        if not state.dirty:
            return {}
        dirty, state.dirty = state.dirty, set()
        cids = state.comps.cid
        return {(v, "cid"): cids.get(v, v) for v in dirty}

    def assemble(self, query, fragmentation: Fragmentation,
                 states: Dict[int, CCState]) -> Dict[Node, Set[Node]]:
        buckets: Dict[Node, Set[Node]] = {}
        for frag in fragmentation:
            cids = states[frag.fid].comps.cid
            for v in frag.owned:
                buckets.setdefault(cids.get(v, v), set()).add(v)
        return buckets
