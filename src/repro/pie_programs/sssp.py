"""PIE program for single-source shortest paths (paper Figs. 3–4).

``PEval`` is Dijkstra's algorithm verbatim; ``IncEval`` is the bounded
incremental algorithm of Ramalingam & Reps; ``Assemble`` takes the union
of per-fragment distances.  The message preamble declares one integer
variable ``dist(s, v)`` per node with candidate set ``C_i = F_i.O`` and
``aggregateMsg = min``.

When ``use_csr`` is on (the default; see :mod:`repro.kernels`) both
sequential functions run as frontier Bellman–Ford relaxations over the
fragment's CSR snapshot instead — same fixpoint, bitwise-identical
distances, machine-speed inner loop.  The program also implements the
incremental coordinator protocol: the relaxations know exactly which
distances they lowered, so ``read_changed_params`` hands the engine the
dirty border entries without a full-dict diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Dict, Optional, Set

import numpy as np

from repro.core.aggregators import MinAggregator
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Node
from repro.kernels import csr_sssp
from repro.partition.base import Fragment, Fragmentation
from repro.sequential.inc_sssp import incremental_sssp_decrease
from repro.sequential.sssp import dijkstra

__all__ = ["SSSPProgram", "SSSPState"]


@dataclass
class SSSPState:
    """Per-fragment state: the declared ``dist(s, v)`` variables."""

    dist: Dict[Node, float] = field(default_factory=dict)
    #: outer border nodes whose distance changed since the last report
    dirty: Set[Node] = field(default_factory=set)
    #: dense-id mirror of ``dist`` for the CSR kernels, rebuilt when the
    #: fragment's snapshot epoch moves or the dict was mutated directly
    _arr: Optional[np.ndarray] = None
    _arr_epoch: int = -1


class SSSPProgram(PIEProgram):
    """Query: the source node ``s``.  Answer: ``{v: dist(s, v)}``."""

    name = "SSSP"
    aggregator = MinAggregator()
    supports_csr = True
    # F_i.O copies carry no local out-edges, so updates only need to reach
    # the owning fragment (the paper routes dist to F_j.I owners).
    route_to = "owner"

    def __init__(self, use_csr: bool = True):
        self.use_csr = use_csr

    def init_state(self, query: Node, fragment: Fragment) -> SSSPState:
        # dist(s, v) initialized to inf for every node (represented by
        # absence), except dist(s, s) = 0 — set lazily by Dijkstra.
        return SSSPState()

    def peval(self, query: Node, fragment: Fragment,
              state: SSSPState) -> None:
        before = {v: state.dist[v] for v in fragment.outer
                  if v in state.dist}
        if self.use_csr:
            self._peval_csr(query, fragment, state)
        else:
            state.dist = dijkstra(fragment.graph, query, initial=state.dist)
            state._arr = None
        for v in fragment.outer:
            if state.dist.get(v, inf) != before.get(v, inf):
                state.dirty.add(v)

    def _peval_csr(self, query: Node, fragment: Fragment,
                   state: SSSPState) -> None:
        csr = fragment.csr()
        id_of = csr.id_of
        # id_of.get: estimates recorded for locally-unknown nodes (see
        # _inceval_csr) are ignored here, as dijkstra's initial filter
        # ignores them — and dropped when dist is rebuilt below.
        seeds: Dict[int, float] = {}
        for v, d in state.dist.items():
            if d < inf:
                vid = id_of.get(v)
                if vid is not None:
                    seeds[vid] = d
        if fragment.graph.has_node(query):
            sid = id_of[query]
            seeds[sid] = min(seeds.get(sid, inf), 0.0)
        arr, _changed = csr_sssp(csr, seeds)
        state._arr = arr
        state._arr_epoch = fragment.csr_epoch
        state.dist = dict(zip(csr.node_of, arr.tolist()))

    def inceval(self, query: Node, fragment: Fragment, state: SSSPState,
                message: ParamUpdates) -> None:
        updates = {node: value for (node, _name), value in message.items()}
        if self.use_csr:
            changed = self._inceval_csr(fragment, state, updates)
        else:
            changed = incremental_sssp_decrease(fragment.graph, state.dist,
                                                updates)
        for v in changed:
            if v in fragment.outer:
                state.dirty.add(v)

    def _inceval_csr(self, fragment: Fragment, state: SSSPState,
                     updates: Dict[Node, float]) -> Set[Node]:
        csr = fragment.csr()
        arr = state._arr
        if arr is None or state._arr_epoch != fragment.csr_epoch:
            arr = np.fromiter((state.dist.get(v, inf) for v in csr.node_of),
                              dtype=np.float64, count=csr.n)
            state._arr = arr
            state._arr_epoch = fragment.csr_epoch
        id_of = csr.id_of
        changed: Set[Node] = set()
        seeds: Dict[int, float] = {}
        for node, value in updates.items():
            vid = id_of.get(node)
            if vid is None:
                # Node unknown to the local graph: record the estimate
                # without propagation, as the dict path does.
                if value < state.dist.get(node, inf):
                    state.dist[node] = value
                    changed.add(node)
            else:
                seeds[vid] = min(value, seeds.get(vid, inf))
        _arr, changed_ids = csr_sssp(csr, seeds, arr)
        node_of = csr.node_of
        for vid, d in zip(changed_ids.tolist(), arr[changed_ids].tolist()):
            node = node_of[vid]
            state.dist[node] = d
            changed.add(node)
        return changed

    def apply_message(self, query: Node, fragment: Fragment,
                      state: SSSPState, message: ParamUpdates) -> None:
        # NI mode: take improved values, no propagation (PEval follows).
        for (node, _name), value in message.items():
            if value < state.dist.get(node, inf):
                state.dist[node] = value
        state._arr = None

    def on_graph_update(self, query: Node, fragment: Fragment,
                        state: SSSPState, delta) -> None:
        """Fold a maintainable delta in: each inserted or cheapened edge
        may open a shortcut from its source's current distance
        (continuous-query maintenance).  Deletions and weight increases
        are not maintainable for SSSP — distances could grow, which the
        min-aggregated fixpoint cannot express — so the base
        ``maintainable`` predicate (monotone only) routes them to the
        session's recompute fallback instead of here."""
        edges = (delta.as_insertions if hasattr(delta, "as_insertions")
                 else delta)
        updates: Dict[Node, float] = {}
        for u, v, w in edges:
            du = 0.0 if u == query else state.dist.get(u, inf)
            alt = du + w
            if alt < min(state.dist.get(v, inf), updates.get(v, inf)):
                updates[v] = alt
        if updates:
            # The fragment graph was just mutated, so any cached CSR
            # arrays are stale; the dict algorithm is authoritative here.
            state._arr = None
            changed = incremental_sssp_decrease(fragment.graph, state.dist,
                                                updates)
            for v in changed:
                if v in fragment.outer:
                    state.dirty.add(v)

    def read_update_params(self, query: Node, fragment: Fragment,
                           state: SSSPState) -> ParamUpdates:
        # C_i = F_i.O; infinite estimates carry no information and are
        # never shipped.
        return {(v, "dist"): state.dist[v] for v in fragment.outer
                if state.dist.get(v, inf) < inf}

    def read_changed_params(self, query: Node, fragment: Fragment,
                            state: SSSPState) -> ParamUpdates:
        if not state.dirty:
            return {}
        dirty, state.dirty = state.dirty, set()
        return {(v, "dist"): state.dist[v] for v in dirty
                if state.dist.get(v, inf) < inf}

    def assemble(self, query: Node, fragmentation: Fragmentation,
                 states: Dict[int, SSSPState]) -> Dict[Node, float]:
        answer: Dict[Node, float] = {}
        for frag in fragmentation:
            st = states[frag.fid]
            for v in frag.owned:
                answer[v] = st.dist.get(v, inf)
        return answer
