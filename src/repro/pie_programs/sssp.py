"""PIE program for single-source shortest paths (paper Figs. 3–4).

``PEval`` is Dijkstra's algorithm verbatim; ``IncEval`` is the bounded
incremental algorithm of Ramalingam & Reps; ``Assemble`` takes the union
of per-fragment distances.  The message preamble declares one integer
variable ``dist(s, v)`` per node with candidate set ``C_i = F_i.O`` and
``aggregateMsg = min``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Any, Dict

from repro.core.aggregators import MinAggregator
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Node
from repro.partition.base import Fragment, Fragmentation
from repro.sequential.inc_sssp import incremental_sssp_decrease
from repro.sequential.sssp import dijkstra

__all__ = ["SSSPProgram", "SSSPState"]


@dataclass
class SSSPState:
    """Per-fragment state: the declared ``dist(s, v)`` variables."""

    dist: Dict[Node, float] = field(default_factory=dict)


class SSSPProgram(PIEProgram):
    """Query: the source node ``s``.  Answer: ``{v: dist(s, v)}``."""

    name = "SSSP"
    aggregator = MinAggregator()
    # F_i.O copies carry no local out-edges, so updates only need to reach
    # the owning fragment (the paper routes dist to F_j.I owners).
    route_to = "owner"

    def init_state(self, query: Node, fragment: Fragment) -> SSSPState:
        # dist(s, v) initialized to inf for every node (represented by
        # absence), except dist(s, s) = 0 — set lazily by Dijkstra.
        return SSSPState()

    def peval(self, query: Node, fragment: Fragment,
              state: SSSPState) -> None:
        state.dist = dijkstra(fragment.graph, query, initial=state.dist)

    def inceval(self, query: Node, fragment: Fragment, state: SSSPState,
                message: ParamUpdates) -> None:
        updates = {node: value for (node, _name), value in message.items()}
        incremental_sssp_decrease(fragment.graph, state.dist, updates)

    def apply_message(self, query: Node, fragment: Fragment,
                      state: SSSPState, message: ParamUpdates) -> None:
        # NI mode: take improved values, no propagation (PEval follows).
        for (node, _name), value in message.items():
            if value < state.dist.get(node, inf):
                state.dist[node] = value

    def on_graph_update(self, query: Node, fragment: Fragment,
                        state: SSSPState, inserted) -> None:
        """Fold inserted edges in: each may open a shortcut from its
        source's current distance (continuous-query maintenance)."""
        updates: Dict[Node, float] = {}
        for u, v, w in inserted:
            du = 0.0 if u == query else state.dist.get(u, inf)
            alt = du + w
            if alt < min(state.dist.get(v, inf), updates.get(v, inf)):
                updates[v] = alt
        if updates:
            incremental_sssp_decrease(fragment.graph, state.dist, updates)

    def read_update_params(self, query: Node, fragment: Fragment,
                           state: SSSPState) -> ParamUpdates:
        # C_i = F_i.O; infinite estimates carry no information and are
        # never shipped.
        return {(v, "dist"): state.dist[v] for v in fragment.outer
                if state.dist.get(v, inf) < inf}

    def assemble(self, query: Node, fragmentation: Fragmentation,
                 states: Dict[int, SSSPState]) -> Dict[Node, float]:
        answer: Dict[Node, float] = {}
        for frag in fragmentation:
            st = states[frag.fid]
            for v in frag.owned:
                answer[v] = st.dist.get(v, inf)
        return answer
