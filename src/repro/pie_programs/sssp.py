"""PIE program for single-source shortest paths (paper Figs. 3–4).

``PEval`` is Dijkstra's algorithm verbatim; ``IncEval`` is the bounded
incremental algorithm of Ramalingam & Reps; ``Assemble`` takes the union
of per-fragment distances.  The message preamble declares one integer
variable ``dist(s, v)`` per node with candidate set ``C_i = F_i.O`` and
``aggregateMsg = min``.

When ``use_csr`` is on (the default; see :mod:`repro.kernels`) both
sequential functions run as frontier Bellman–Ford relaxations over the
fragment's CSR snapshot instead — same fixpoint, bitwise-identical
distances, machine-speed inner loop.  The program also implements the
incremental coordinator protocol: the relaxations know exactly which
distances they lowered, so ``read_changed_params`` hands the engine the
dirty border entries without a full-dict diff.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from math import inf
from typing import Dict, Optional, Set

import numpy as np

from repro.core.aggregators import MinAggregator
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Node
from repro.kernels import csr_sssp, csr_sssp_affected, csr_sssp_reseed
from repro.partition.base import Fragment, Fragmentation
from repro.sequential.inc_sssp import incremental_sssp_decrease
from repro.sequential.sssp import dijkstra

__all__ = ["SSSPProgram", "SSSPState"]


@dataclass
class SSSPState:
    """Per-fragment state: the declared ``dist(s, v)`` variables."""

    dist: Dict[Node, float] = field(default_factory=dict)
    #: outer border nodes whose distance changed since the last report
    dirty: Set[Node] = field(default_factory=set)
    #: dense-id mirror of ``dist`` for the CSR kernels, rebuilt when the
    #: fragment's snapshot epoch moves or the dict was mutated directly
    _arr: Optional[np.ndarray] = None
    _arr_epoch: int = -1


class SSSPProgram(PIEProgram):
    """Query: the source node ``s``.  Answer: ``{v: dist(s, v)}``."""

    name = "SSSP"
    aggregator = MinAggregator()
    supports_csr = True
    # F_i.O copies carry no local out-edges, so updates only need to reach
    # the owning fragment (the paper routes dist to F_j.I owners).
    route_to = "owner"

    def __init__(self, use_csr: bool = True):
        self.use_csr = use_csr

    def init_state(self, query: Node, fragment: Fragment) -> SSSPState:
        # dist(s, v) initialized to inf for every node (represented by
        # absence), except dist(s, s) = 0 — set lazily by Dijkstra.
        return SSSPState()

    def peval(self, query: Node, fragment: Fragment,
              state: SSSPState) -> None:
        before = {v: state.dist[v] for v in fragment.outer
                  if v in state.dist}
        if self.use_csr:
            self._peval_csr(query, fragment, state)
        else:
            state.dist = dijkstra(fragment.graph, query, initial=state.dist)
            state._arr = None
        for v in fragment.outer:
            if state.dist.get(v, inf) != before.get(v, inf):
                state.dirty.add(v)

    def _peval_csr(self, query: Node, fragment: Fragment,
                   state: SSSPState) -> None:
        csr = fragment.csr()
        id_of = csr.id_of
        # id_of.get: estimates recorded for locally-unknown nodes (see
        # _inceval_csr) are ignored here, as dijkstra's initial filter
        # ignores them — and dropped when dist is rebuilt below.
        seeds: Dict[int, float] = {}
        for v, d in state.dist.items():
            if d < inf:
                vid = id_of.get(v)
                if vid is not None:
                    seeds[vid] = d
        if fragment.graph.has_node(query):
            sid = id_of[query]
            seeds[sid] = min(seeds.get(sid, inf), 0.0)
        arr, _changed = csr_sssp(csr, seeds)
        state._arr = arr
        state._arr_epoch = fragment.csr_epoch
        state.dist = dict(zip(csr.node_of, arr.tolist()))

    def inceval(self, query: Node, fragment: Fragment, state: SSSPState,
                message: ParamUpdates) -> None:
        updates = {node: value for (node, _name), value in message.items()}
        if self.use_csr and fragment.csr_cached:
            changed = self._inceval_csr(fragment, state, updates)
        else:
            changed = incremental_sssp_decrease(fragment.graph, state.dist,
                                                updates)
        for v in changed:
            if v in fragment.outer:
                state.dirty.add(v)

    @staticmethod
    def _ensure_arr(fragment: Fragment, state: SSSPState,
                    csr) -> np.ndarray:
        """Dense-id mirror of ``state.dist``, rebuilt when the snapshot
        epoch moved or a dict mutation cleared the cache
        (``state._arr = None`` — every path that touches ``dist``
        without going through the kernels must clear it)."""
        arr = state._arr
        if arr is None or state._arr_epoch != fragment.csr_epoch:
            arr = np.fromiter((state.dist.get(v, inf) for v in csr.node_of),
                              dtype=np.float64, count=csr.n)
            state._arr = arr
            state._arr_epoch = fragment.csr_epoch
        return arr

    def _inceval_csr(self, fragment: Fragment, state: SSSPState,
                     updates: Dict[Node, float]) -> Set[Node]:
        csr = fragment.csr()
        arr = self._ensure_arr(fragment, state, csr)
        id_of = csr.id_of
        changed: Set[Node] = set()
        seeds: Dict[int, float] = {}
        for node, value in updates.items():
            vid = id_of.get(node)
            if vid is None:
                # Node unknown to the local graph: record the estimate
                # without propagation, as the dict path does.
                if value < state.dist.get(node, inf):
                    state.dist[node] = value
                    changed.add(node)
            else:
                seeds[vid] = min(value, seeds.get(vid, inf))
        _arr, changed_ids = csr_sssp(csr, seeds, arr)
        node_of = csr.node_of
        for vid, d in zip(changed_ids.tolist(), arr[changed_ids].tolist()):
            node = node_of[vid]
            state.dist[node] = d
            changed.add(node)
        return changed

    def apply_message(self, query: Node, fragment: Fragment,
                      state: SSSPState, message: ParamUpdates) -> None:
        # NI mode: take improved values, no propagation (PEval follows).
        for (node, _name), value in message.items():
            if value < state.dist.get(node, inf):
                state.dist[node] = value
        state._arr = None

    def maintainable(self, delta) -> bool:
        """Every batch is maintainable: the monotone part folds through
        :meth:`on_graph_update`, deletions and weight increases go
        through the bounded affected-region path
        (:meth:`apply_nonmonotone`)."""
        return True

    def on_graph_update(self, query: Node, fragment: Fragment,
                        state: SSSPState, delta) -> None:
        """Fold a monotone delta in: each inserted or cheapened edge
        may open a shortcut from its source's current distance
        (continuous-query maintenance).  Deletions and weight increases
        never reach this hook — the session's ``invalidates`` dispatch
        routes them through the bounded affected-region path below."""
        edges = (delta.as_insertions if hasattr(delta, "as_insertions")
                 else delta)
        updates: Dict[Node, float] = {}
        for u, v, w in edges:
            du = 0.0 if u == query else state.dist.get(u, inf)
            alt = du + w
            if alt < min(state.dist.get(v, inf), updates.get(v, inf)):
                updates[v] = alt
        if updates:
            # The fragment graph was just mutated, so any cached CSR
            # arrays are stale; the dict algorithm is authoritative here.
            state._arr = None
            changed = incremental_sssp_decrease(fragment.graph, state.dist,
                                                updates)
            for v in changed:
                if v in fragment.outer:
                    state.dirty.add(v)

    # ------------------------------------------------------------------
    # Bounded non-monotone maintenance (delete-aware IncEval)
    # ------------------------------------------------------------------
    def affected_seeds(self, query: Node, fragment: Fragment,
                       state: SSSPState, delta) -> Set[Node]:
        """Direct hits: heads of deleted or reweighted edges whose
        converged distance was exactly supported by that edge — tested
        with the *old* weight, on the values the edge helped converge —
        plus retired mirror copies holding stale estimates.  *Every*
        reweight seeds, not just increases: a decreased edge in the same
        non-monotone batch makes the old support equality unrecognizable
        to the closure (the stored weight moved), so its head could
        otherwise keep a stale value whose upstream support was raised.
        Conservative resets are safe — the re-seeding re-derives the
        value.  For undirected fragments both orientations are tested (a
        local deletion removes both stored directions but records one
        triple)."""
        dist = state.dist
        undirected = not fragment.graph.directed
        seeds: Set[Node] = set()

        def hit(u: Node, v: Node, w: float) -> bool:
            du = dist.get(u, inf)
            return du < inf and dist.get(v, inf) == du + w

        for u, v, w in delta.deletions:
            if hit(u, v, w):
                seeds.add(v)
            if undirected and hit(v, u, w):
                seeds.add(u)
        for u, v, old, _new in delta.weight_changes:
            if hit(u, v, old):
                seeds.add(v)
            if undirected and hit(v, u, old):
                seeds.add(u)
        seeds.update(delta.retired_nodes)
        return seeds

    def expand_affected(self, query: Node, fragment: Fragment,
                        state: SSSPState, nodes: Set[Node]) -> Set[Node]:
        """Close the region along still-standing support chains: a
        vertex whose current distance equals an affected in-neighbor's
        distance plus the (current) edge weight may have lost its
        support too.  Mutated edges need no closure step of their own —
        their heads are direct hits of :meth:`affected_seeds`.  Vertices
        with no finite distance are never expanded through (``inf`` is
        not a support)."""
        dist = state.dist
        graph = fragment.graph
        local = {v for v in nodes if v in dist or graph.has_node(v)}
        if not local:
            return local
        if self.use_csr and fragment.csr_cached:
            return self._expand_affected_csr(fragment, state, local)
        affected = set(local)
        dq = deque(v for v in local
                   if graph.has_node(v) and dist.get(v, inf) < inf)
        while dq:
            y = dq.popleft()
            dy = dist[y]
            for x, w in graph.successors_with_weights(y):
                if x not in affected and dist.get(x, inf) == dy + w:
                    affected.add(x)
                    dq.append(x)
        return affected

    def _expand_affected_csr(self, fragment: Fragment, state: SSSPState,
                             local: Set[Node]) -> Set[Node]:
        csr = fragment.csr()
        arr = self._ensure_arr(fragment, state, csr)
        id_of = csr.id_of
        seed_ids = [id_of[v] for v in local if v in id_of]
        out = set(local)
        if seed_ids:
            aff = csr_sssp_affected(csr, arr, seed_ids)
            node_of = csr.node_of
            out.update(node_of[i] for i in aff.tolist())
        return out

    def apply_nonmonotone(self, query: Node, fragment: Fragment,
                          state: SSSPState, delta,
                          affected: Set[Node]) -> None:
        """Reset the affected vertices to neutral (``inf``), re-seed
        them from *unaffected* in-neighbors on the mutated graph, fold
        the batch's monotone part, and re-converge locally.  Every seed
        is a real path length, so the monotone relaxation from here
        reaches the exact (bitwise) Bellman fixpoint."""
        graph = fragment.graph
        dist = state.dist
        # The graph was (possibly) mutated and the pops below bypass the
        # kernels, so any cached dense mirror is stale either way.
        state._arr = None
        for v in affected:
            dist.pop(v, None)
        if delta is not None:
            for v in delta.retired_nodes:
                dist.pop(v, None)
        if self.use_csr and fragment.csr_cached:
            self._apply_nonmonotone_csr(query, fragment, state, delta,
                                        affected)
            return
        seeds: Dict[Node, float] = {}

        def offer(v: Node, d: float) -> None:
            if d < min(dist.get(v, inf), seeds.get(v, inf)):
                seeds[v] = d

        if graph.has_node(query) and query in affected:
            offer(query, 0.0)
        for x in affected:
            if not graph.has_node(x):
                continue
            for y, w in graph.predecessors_with_weights(x):
                if y not in affected:
                    dy = dist.get(y, inf)
                    if dy < inf:
                        offer(x, dy + w)
        if delta is not None:
            for u, v, w in delta.as_insertions:
                du = 0.0 if u == query else dist.get(u, inf)
                offer(v, du + w)
        changed = incremental_sssp_decrease(graph, dist, seeds)
        outer = fragment.outer
        for v in changed:
            if v in outer:
                state.dirty.add(v)

    def _apply_nonmonotone_csr(self, query: Node, fragment: Fragment,
                               state: SSSPState, delta,
                               affected: Set[Node]) -> None:
        csr = fragment.csr()
        arr = self._ensure_arr(fragment, state, csr)
        id_of = csr.id_of
        aff_ids = [id_of[v] for v in affected if v in id_of]
        seeds = csr_sssp_reseed(csr, arr, aff_ids)
        if fragment.graph.has_node(query) and query in affected:
            sid = id_of[query]
            seeds[sid] = min(seeds.get(sid, inf), 0.0)
        dist = state.dist
        if delta is not None:
            for u, v, w in delta.as_insertions:
                du = 0.0 if u == query else dist.get(u, inf)
                alt = du + w
                vid = id_of.get(v)
                if vid is not None and alt < min(float(arr[vid]),
                                                 seeds.get(vid, inf)):
                    seeds[vid] = alt
        _arr, changed_ids = csr_sssp(csr, seeds, arr)
        node_of = csr.node_of
        outer = fragment.outer
        for vid, d in zip(changed_ids.tolist(), arr[changed_ids].tolist()):
            node = node_of[vid]
            dist[node] = d
            if node in outer:
                state.dirty.add(node)

    def read_update_params(self, query: Node, fragment: Fragment,
                           state: SSSPState) -> ParamUpdates:
        # C_i = F_i.O; infinite estimates carry no information and are
        # never shipped.
        return {(v, "dist"): state.dist[v] for v in fragment.outer
                if state.dist.get(v, inf) < inf}

    def report_entries(self, query: Node, fragment: Fragment,
                       state: SSSPState, nodes: Set[Node]) -> ParamUpdates:
        """Per-node restriction of :meth:`read_update_params` — the
        session's incremental rebaseline probes exactly the vertices a
        non-monotone batch could have touched."""
        dist = state.dist
        outer = fragment.outer
        return {(v, "dist"): dist[v] for v in nodes
                if v in outer and dist.get(v, inf) < inf}

    def read_changed_params(self, query: Node, fragment: Fragment,
                            state: SSSPState) -> ParamUpdates:
        if not state.dirty:
            return {}
        dirty, state.dirty = state.dirty, set()
        return {(v, "dist"): state.dist[v] for v in dirty
                if state.dist.get(v, inf) < inf}

    def assemble(self, query: Node, fragmentation: Fragmentation,
                 states: Dict[int, SSSPState]) -> Dict[Node, float]:
        answer: Dict[Node, float] = {}
        for frag in fragmentation:
            st = states[frag.fid]
            for v in frag.owned:
                answer[v] = st.dist.get(v, inf)
        return answer
