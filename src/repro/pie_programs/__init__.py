"""The PIE program library: SSSP, Sim, SubIso, CC and CF (paper §3, §5)."""

from repro.pie_programs.bfs import BFSProgram, BFSState
from repro.pie_programs.cc import CCProgram, CCState
from repro.pie_programs.cf import CFProgram, CFQuery, CFState
from repro.pie_programs.sim import SimProgram, SimState
from repro.pie_programs.sssp import SSSPProgram, SSSPState
from repro.pie_programs.pagerank import (PageRankProgram, PageRankQuery,
                                          PageRankState)
from repro.pie_programs.subiso import SubIsoProgram, SubIsoState

__all__ = [
    "SSSPProgram", "SSSPState", "SimProgram", "SimState",
    "SubIsoProgram", "SubIsoState", "CCProgram", "CCState",
    "CFProgram", "CFQuery", "CFState", "BFSProgram", "BFSState",
    "PageRankProgram", "PageRankQuery", "PageRankState",
]
