"""PIE program for subgraph isomorphism (paper Section 5.1).

The paper's two-superstep scheme: first each fragment is extended with the
``d_Q``-neighborhood of its in-border nodes (data shipped through the
engine's preprocess channel, charged as communication), then VF2 runs
locally once.  No update parameters change, so the fixpoint terminates
after PEval; ``Assemble`` unions partial matches, deduplicating matches
found by several fragments.

Completeness relies on the locality of subgraph isomorphism for connected
patterns: a cross-fragment match contains an in-border node, and all its
nodes lie within ``d_Q`` undirected hops of it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.aggregators import DefaultExceptionAggregator
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Graph, Node
from repro.partition.base import Fragment, Fragmentation
from repro.sequential.subiso import (canonical_match, pattern_diameter,
                                     vf2_all_matches)

__all__ = ["SubIsoProgram", "SubIsoState"]


@dataclass
class SubIsoState:
    """Per-fragment state: expanded graph and local matches."""

    expanded: Optional[Graph] = None
    matches: List[Dict[Node, Node]] = field(default_factory=list)


class SubIsoProgram(PIEProgram):
    """Query: a connected pattern graph.  Answer: list of match mappings."""

    name = "SubIso"
    aggregator = DefaultExceptionAggregator()

    def __init__(self, match_limit: Optional[int] = None):
        #: optional per-fragment cap on matches (SubIso is NP-complete)
        self.match_limit = match_limit

    # ------------------------------------------------------------------
    def init_state(self, query: Graph, fragment: Fragment) -> SubIsoState:
        return SubIsoState()

    def preprocess(self, query: Graph,
                   fragmentation: Fragmentation) -> Dict[int, tuple]:
        """Ship each fragment the ``d_Q``-neighborhood of ``F_i.I``.

        The payload contains only nodes and edges the fragment does not
        already hold; its serialized size is charged as communication.
        """
        d_q = pattern_diameter(query)
        graph = fragmentation.graph
        payloads: Dict[int, tuple] = {}
        for frag in fragmentation:
            if not frag.inner:
                continue
            reach: Set[Node] = set(frag.inner)
            frontier = deque((v, 0) for v in frag.inner)
            while frontier:
                v, depth = frontier.popleft()
                if depth == d_q:
                    continue
                for w in graph.neighbors(v):
                    if w not in reach:
                        reach.add(w)
                        frontier.append((w, depth + 1))
            local = frag.graph
            new_nodes = [(v, graph.node_label(v)) for v in reach
                         if not local.has_node(v)]
            known = reach | set(local.nodes())
            new_edges = []
            for v in reach:
                for w, weight in graph.successors_with_weights(v):
                    if w in known and not local.has_edge(v, w):
                        new_edges.append((v, w, weight))
                # incoming edges from known nodes into the reach set
                for w, weight in graph.predecessors_with_weights(v):
                    if w in known and not local.has_edge(w, v):
                        new_edges.append((w, v, weight))
            if new_nodes or new_edges:
                payloads[frag.fid] = (new_nodes, new_edges)
        return payloads

    def apply_preprocess(self, query: Graph, fragment: Fragment,
                         state: SubIsoState, payload: tuple) -> None:
        new_nodes, new_edges = payload
        expanded = fragment.graph.copy()
        for v, label in new_nodes:
            expanded.add_node(v, label)
        for u, v, w in new_edges:
            if expanded.has_node(u) and expanded.has_node(v):
                expanded.add_edge(u, v, weight=w)
        state.expanded = expanded

    # ------------------------------------------------------------------
    def peval(self, query: Graph, fragment: Fragment,
              state: SubIsoState) -> None:
        graph = state.expanded if state.expanded is not None \
            else fragment.graph
        state.matches = vf2_all_matches(query, graph,
                                        limit=self.match_limit)

    def inceval(self, query: Graph, fragment: Fragment, state: SubIsoState,
                message: ParamUpdates) -> None:
        """Never invoked: the id variables never change (paper: "IncEval
        sends no messages ... executed once")."""

    def read_update_params(self, query: Graph, fragment: Fragment,
                           state: SubIsoState) -> ParamUpdates:
        return {}

    def assemble(self, query: Graph, fragmentation: Fragmentation,
                 states: Dict[int, SubIsoState]) -> List[Dict[Node, Node]]:
        seen = set()
        result: List[Dict[Node, Node]] = []
        for frag in fragmentation:
            for match in states[frag.fid].matches:
                key = canonical_match(match)
                if key not in seen:
                    seen.add(key)
                    result.append(match)
        return result
