"""PIE program for PageRank (power iteration).

Another stock GRAPE-lineage application (libgrape-lite's ``pagerank``).
Like CF, PageRank's update parameters are not naturally monotonic, so
termination follows the paper's CF recipe: a fixed iteration budget
and/or an L1-delta threshold, with ``(iteration, value)`` parameters
aggregated by lexicographic max.

Each fragment keeps ranks for its local nodes (including border copies);
an iteration pushes rank along local out-edges; copies' *contributions*
(rank mass flowing over cut edges) are the shipped parameters, folded in
by the owners next round — the standard distributed power iteration
expressed as a PIE program.

With ``use_csr`` on (the default) the push runs as one
:func:`repro.kernels.csr_pagerank_push` over the fragment's CSR snapshot.
``np.add.at`` folds shares in the same order as the dict loop, so the
resulting ranks are bitwise-identical.  Every iteration refreshes all
non-zero contributions (their ``(iteration, value)`` tags always
advance), so ``read_changed_params`` is a constant-time staleness check
rather than a dict diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.aggregators import MaxAggregator
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Node
from repro.kernels import csr_pagerank_push
from repro.partition.base import Fragment, Fragmentation

__all__ = ["PageRankQuery", "PageRankProgram", "PageRankState"]


@dataclass(frozen=True)
class PageRankQuery:
    """PageRank configuration.

    damping: the usual 0.85;
    max_iterations: superstep budget;
    tolerance: optional early stop on the local L1 delta.
    """

    damping: float = 0.85
    max_iterations: int = 20
    tolerance: Optional[float] = None


@dataclass
class PageRankState:
    """Per-fragment state: ranks and incoming cross-edge contributions."""

    rank: Dict[Node, float] = field(default_factory=dict)
    #: rank mass arriving over cut edges: node -> {source fragment: mass}
    external: Dict[Node, Dict[int, float]] = field(default_factory=dict)
    #: mass this fragment sends to each copy, refreshed per iteration
    outgoing: Dict[Node, float] = field(default_factory=dict)
    iteration: int = 0
    converged: bool = False
    num_global_nodes: int = 0
    #: iteration whose contributions were last reported to the engine
    _reported_iteration: int = -1
    #: (csr epoch, owned/outer node orders and dense ids, owned position
    #: index) — derived from the snapshot, rebuilt when it moves
    _csr_cache: Optional[tuple] = None


class PageRankProgram(PIEProgram):
    """Query: :class:`PageRankQuery`.  Answer: ``{node: rank}`` summing
    to ~1 over the graph."""

    name = "PageRank"
    # (iteration, contribution) — newest iteration wins, value order
    # breaks ties; every real change advances the order (the CF recipe).
    aggregator = MaxAggregator()
    supports_csr = True
    route_to = "owner"

    def __init__(self, use_csr: bool = True):
        self.use_csr = use_csr

    def init_state(self, query: PageRankQuery,
                   fragment: Fragment) -> PageRankState:
        state = PageRankState()
        return state

    def preprocess(self, query: PageRankQuery,
                   fragmentation: Fragmentation) -> Dict[int, int]:
        """Broadcast |V| (needed for the uniform teleport term)."""
        n = fragmentation.graph.num_nodes
        return {frag.fid: n for frag in fragmentation}

    def apply_preprocess(self, query: PageRankQuery, fragment: Fragment,
                         state: PageRankState, payload: int) -> None:
        state.num_global_nodes = payload

    # ------------------------------------------------------------------
    def _iterate(self, query: PageRankQuery, fragment: Fragment,
                 state: PageRankState) -> None:
        """One power-iteration step over the local fragment."""
        if self.use_csr:
            self._iterate_csr(query, fragment, state)
        else:
            self._iterate_dict(query, fragment, state)
        state.iteration += 1
        if state.iteration >= query.max_iterations:
            state.converged = True

    def _iterate_dict(self, query: PageRankQuery, fragment: Fragment,
                      state: PageRankState) -> None:
        graph = fragment.graph
        n = max(1, state.num_global_nodes)
        teleport = (1.0 - query.damping) / n
        if not state.rank:
            state.rank = {v: 1.0 / n for v in fragment.owned}

        incoming: Dict[Node, float] = {v: 0.0 for v in graph.nodes()}
        for v in fragment.owned:
            out_deg = graph.out_degree(v)
            if out_deg == 0:
                continue
            share = state.rank.get(v, 0.0) / out_deg
            for w in graph.successors(v):
                incoming[w] = incoming.get(w, 0.0) + share

        new_rank: Dict[Node, float] = {}
        delta = 0.0
        for v in fragment.owned:
            external = sum(state.external.get(v, {}).values())
            value = (teleport
                     + query.damping * (incoming.get(v, 0.0) + external))
            delta += abs(value - state.rank.get(v, 0.0))
            new_rank[v] = value
        # Contributions flowing to copies (owned elsewhere) this round.
        state.outgoing = {v: incoming.get(v, 0.0)
                          for v in fragment.outer}
        state.rank = new_rank
        self._check_tolerance(query, state, delta)

    def _iterate_csr(self, query: PageRankQuery, fragment: Fragment,
                     state: PageRankState) -> None:
        csr = fragment.csr()
        cache = state._csr_cache
        if cache is None or cache[0] != fragment.csr_epoch:
            id_of = csr.id_of
            owned_list = list(fragment.owned)
            owned_ids = np.fromiter((id_of[v] for v in owned_list),
                                    dtype=np.int64, count=len(owned_list))
            outer_list = list(fragment.outer)
            outer_ids = np.fromiter((id_of[v] for v in outer_list),
                                    dtype=np.int64, count=len(outer_list))
            pos_of = {v: i for i, v in enumerate(owned_list)}
            cache = state._csr_cache = (fragment.csr_epoch, owned_list,
                                        owned_ids, outer_list, outer_ids,
                                        pos_of)
        _epoch, owned_list, owned_ids, outer_list, outer_ids, pos_of = cache

        n = max(1, state.num_global_nodes)
        teleport = (1.0 - query.damping) / n
        if not state.rank:
            state.rank = {v: 1.0 / n for v in fragment.owned}

        rank_arr = np.zeros(csr.n, dtype=np.float64)
        rank_arr[owned_ids] = np.fromiter(
            (state.rank.get(v, 0.0) for v in owned_list),
            dtype=np.float64, count=len(owned_list))
        incoming = csr_pagerank_push(csr, rank_arr, owned_ids)

        ext = np.zeros(len(owned_list), dtype=np.float64)
        for v, srcs in state.external.items():
            i = pos_of.get(v)
            if i is not None:
                ext[i] = sum(srcs.values())

        old = rank_arr[owned_ids]
        vals = teleport + query.damping * (incoming[owned_ids] + ext)
        state.outgoing = dict(zip(outer_list,
                                  incoming[outer_ids].tolist()))
        state.rank = dict(zip(owned_list, vals.tolist()))
        if query.tolerance is not None:
            # Left-fold over Python floats: the dict path's exact sum.
            self._check_tolerance(query, state,
                                  sum(np.abs(vals - old).tolist()))

    def _check_tolerance(self, query: PageRankQuery, state: PageRankState,
                         delta: float) -> None:
        if query.tolerance is not None and delta <= query.tolerance:
            state.converged = True

    def peval(self, query: PageRankQuery, fragment: Fragment,
              state: PageRankState) -> None:
        if state.converged:
            return
        if not fragment.border_nodes:
            # No external input will ever arrive: partial evaluation IS
            # complete evaluation — iterate to convergence locally.
            while not state.converged:
                self._iterate(query, fragment, state)
        else:
            self._iterate(query, fragment, state)

    def inceval(self, query: PageRankQuery, fragment: Fragment,
                state: PageRankState, message: ParamUpdates) -> None:
        if state.converged:
            return
        for (v, name), (_t, contribution) in message.items():
            _tag, src = name
            state.external.setdefault(v, {})[src] = contribution
        self._iterate(query, fragment, state)

    def apply_message(self, query: PageRankQuery, fragment: Fragment,
                      state: PageRankState, message: ParamUpdates) -> None:
        for (v, name), (_t, contribution) in message.items():
            _tag, src = name
            state.external.setdefault(v, {})[src] = contribution

    # ------------------------------------------------------------------
    def read_update_params(self, query: PageRankQuery, fragment: Fragment,
                           state: PageRankState) -> ParamUpdates:
        # Per-source keys: owners must *sum* contributions from different
        # fragments, so each sender's mass is its own parameter.
        return {(v, ("contrib", fragment.fid)): (state.iteration, value)
                for v, value in state.outgoing.items() if value > 0.0}

    def read_changed_params(self, query: PageRankQuery, fragment: Fragment,
                            state: PageRankState) -> ParamUpdates:
        # The iteration tag advances with every real step, so either
        # nothing ran since the last read (nothing changed) or every
        # non-zero contribution is fresh (the full current dict).
        if state.iteration == state._reported_iteration:
            return {}
        state._reported_iteration = state.iteration
        return self.read_update_params(query, fragment, state)

    def assemble(self, query: PageRankQuery, fragmentation: Fragmentation,
                 states: Dict[int, PageRankState]) -> Dict[Node, float]:
        answer: Dict[Node, float] = {}
        for frag in fragmentation:
            answer.update(states[frag.fid].rank)
        return answer
