"""PIE program for graph pattern matching via simulation (paper §5.1).

``PEval`` is the sequential simulation algorithm of Henzinger, Henzinger &
Kopke; ``IncEval`` is the incremental maintenance algorithm of Fan et al.
in response to match invalidations; ``Assemble`` unions partial relations.

Message preamble: a Boolean ``x_(u,v)`` per query node ``u`` and border
node ``v``, candidate set ``C_i = F_i.I``, initialized ``true``; the
aggregator is ``min`` under ``false ≺ true``, so each variable flips at
most once — the paper's canonical monotonic example.

Border copies (``F_i.O``) are *frozen* during local refinement: their truth
is owned by another fragment, and only explicit falsification messages may
remove them — exactly the "treated as deletion of cross edges" reading.

The optional ``candidate_index`` hook plugs in the neighborhood index of
:mod:`repro.optim.indexing`, reproducing the paper's Exp-3 compatibility
result (sequential optimizations carry over to GRAPE unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.core.aggregators import MinAggregator
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Graph, Node
from repro.partition.base import Fragment, Fragmentation
from repro.sequential.inc_simulation import incremental_simulation_remove
from repro.sequential.simulation import SimRelation, simulation_refinement

__all__ = ["SimProgram", "SimState"]

CandidateIndex = Callable[[Graph, Graph], Dict[Node, Set[Node]]]


@dataclass
class SimState:
    """Per-fragment state for Sim."""

    sim: SimRelation = field(default_factory=dict)
    #: pairs known false from messages (survives NI-mode re-runs)
    false_pairs: Set[Tuple[Node, Node]] = field(default_factory=set)


class SimProgram(PIEProgram):
    """Query: a pattern graph.  Answer: the maximum simulation relation."""

    name = "Sim"
    aggregator = MinAggregator()  # false ≺ true
    route_to = "holders"

    def __init__(self, candidate_index: Optional[CandidateIndex] = None):
        self.candidate_index = candidate_index

    # ------------------------------------------------------------------
    def init_state(self, query: Graph, fragment: Fragment) -> SimState:
        return SimState()

    def _initial_candidates(self, query: Graph, fragment: Fragment,
                            state: SimState) -> Dict[Node, Set[Node]]:
        graph = fragment.graph
        if self.candidate_index is not None:
            cands = self.candidate_index(query, graph)
            # Border copies have no local out-edges, so structural filters
            # (e.g. successor-label coverage) would wrongly drop them; their
            # truth is owned by another fragment and must stay optimistic.
            for u in query.nodes():
                u_label = query.node_label(u)
                for v in fragment.outer:
                    if graph.node_label(v) == u_label:
                        cands.setdefault(u, set()).add(v)
        else:
            by_label: Dict[Any, Set[Node]] = {}
            for v in graph.nodes():
                by_label.setdefault(graph.node_label(v), set()).add(v)
            cands = {u: set(by_label.get(query.node_label(u), set()))
                     for u in query.nodes()}
        for u, v in state.false_pairs:
            cands.get(u, set()).discard(v)
        return cands

    def peval(self, query: Graph, fragment: Fragment,
              state: SimState) -> None:
        candidates = self._initial_candidates(query, fragment, state)
        state.sim = simulation_refinement(query, fragment.graph,
                                          candidates=candidates,
                                          frozen=fragment.outer)

    def inceval(self, query: Graph, fragment: Fragment, state: SimState,
                message: ParamUpdates) -> None:
        invalidated = []
        for (v, name), value in message.items():
            _tag, u = name
            if value is False:
                state.false_pairs.add((u, v))
                invalidated.append((u, v))
        incremental_simulation_remove(query, fragment.graph, state.sim,
                                      invalidated, frozen=fragment.outer)

    def apply_message(self, query: Graph, fragment: Fragment,
                      state: SimState, message: ParamUpdates) -> None:
        # NI mode: remember falsifications; PEval re-runs from scratch.
        for (v, name), value in message.items():
            _tag, u = name
            if value is False:
                state.false_pairs.add((u, v))
                if u in state.sim:
                    state.sim[u].discard(v)

    # ------------------------------------------------------------------
    def read_update_params(self, query: Graph, fragment: Fragment,
                           state: SimState) -> ParamUpdates:
        """x_(u,v) for owned border nodes; only falsifications of label-
        matching pairs are informative (everything starts true)."""
        params: ParamUpdates = {}
        graph = fragment.graph
        for u in query.nodes():
            u_label = query.node_label(u)
            matches = state.sim.get(u, set())
            for v in fragment.inner:
                if graph.node_label(v) != u_label:
                    continue
                if v not in matches:
                    params[(v, ("x", u))] = False
        return params

    def assemble(self, query: Graph, fragmentation: Fragmentation,
                 states: Dict[int, SimState]) -> SimRelation:
        result: SimRelation = {u: set() for u in query.nodes()}
        for frag in fragmentation:
            sim = states[frag.fid].sim
            for u in query.nodes():
                for v in sim.get(u, set()):
                    if v in frag.owned:
                        result[u].add(v)
        # Whole-graph semantics: no total match -> empty relation.
        if any(not vs for vs in result.values()):
            return {u: set() for u in query.nodes()}
        return result
