"""PIE program for breadth-first search (hop distances).

One of the stock applications the GRAPE lineage ships (libgrape-lite's
``bfs``): identical structure to SSSP with unit weights, but the
sequential algorithms are the textbook queue-based BFS and its resume-
from-frontier incremental variant — another illustration that plugging in
a different sequential pair is all a new query class needs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.core.aggregators import MinAggregator
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Node
from repro.partition.base import Fragment, Fragmentation

__all__ = ["BFSProgram", "BFSState"]

UNREACHED = -1  # hop count sentinel (kept integral, unlike SSSP's inf)


@dataclass
class BFSState:
    """Per-fragment state: hop counts (absent = unreached)."""

    hops: Dict[Node, int] = field(default_factory=dict)


def _bfs_from(fragment: Fragment, hops: Dict[Node, int],
              frontier: Iterable[Node]) -> None:
    """Queue-based BFS resuming from ``frontier`` (in place)."""
    graph = fragment.graph
    dq = deque((v, hops[v]) for v in frontier if v in hops)
    while dq:
        v, d = dq.popleft()
        if d > hops.get(v, 1 << 60):
            continue
        for w in graph.successors(v):
            if d + 1 < hops.get(w, 1 << 60):
                hops[w] = d + 1
                dq.append((w, d + 1))


class BFSProgram(PIEProgram):
    """Query: the source node.  Answer: ``{v: hop count}`` (-1 if
    unreached)."""

    name = "BFS"
    aggregator = MinAggregator()
    route_to = "owner"

    def init_state(self, query: Node, fragment: Fragment) -> BFSState:
        return BFSState()

    def peval(self, query: Node, fragment: Fragment,
              state: BFSState) -> None:
        if fragment.graph.has_node(query) \
                and 0 < state.hops.get(query, 1 << 60):
            state.hops[query] = 0
        if state.hops:
            # Resume from everything known (covers both the first run and
            # NI-mode re-runs seeded by applied messages).
            _bfs_from(fragment, state.hops, list(state.hops))

    def inceval(self, query: Node, fragment: Fragment, state: BFSState,
                message: ParamUpdates) -> None:
        frontier = []
        for (v, _name), hop in message.items():
            if hop < state.hops.get(v, 1 << 60):
                state.hops[v] = hop
                frontier.append(v)
        _bfs_from(fragment, state.hops, frontier)

    def apply_message(self, query: Node, fragment: Fragment,
                      state: BFSState, message: ParamUpdates) -> None:
        for (v, _name), hop in message.items():
            if hop < state.hops.get(v, 1 << 60):
                state.hops[v] = hop

    def read_update_params(self, query: Node, fragment: Fragment,
                           state: BFSState) -> ParamUpdates:
        return {(v, "hop"): state.hops[v] for v in fragment.outer
                if v in state.hops}

    def assemble(self, query: Node, fragmentation: Fragmentation,
                 states: Dict[int, BFSState]) -> Dict[Node, int]:
        answer: Dict[Node, int] = {}
        for frag in fragmentation:
            hops = states[frag.fid].hops
            for v in frag.owned:
                answer[v] = hops.get(v, UNREACHED)
        return answer
