"""PIE program for breadth-first search (hop distances).

One of the stock applications the GRAPE lineage ships (libgrape-lite's
``bfs``): identical structure to SSSP with unit weights, but the
sequential algorithms are the textbook queue-based BFS and its resume-
from-frontier incremental variant — another illustration that plugging in
a different sequential pair is all a new query class needs.

With ``use_csr`` on (the default) both functions run as level-synchronous
frontier expansions over the fragment's CSR snapshot
(:func:`repro.kernels.csr_bfs`) — hop counts are integers, so the paths
are trivially identical — and dirty border hops feed the engine's
incremental coordinator protocol via ``read_changed_params``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

import numpy as np

from repro.core.aggregators import MinAggregator
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Node
from repro.kernels import (UNREACHED_HOPS, csr_bfs, csr_bfs_affected,
                           csr_bfs_reseed)
from repro.partition.base import Fragment, Fragmentation

__all__ = ["BFSProgram", "BFSState"]

UNREACHED = -1  # hop count sentinel (kept integral, unlike SSSP's inf)

_FAR = UNREACHED_HOPS  # internal "not reached" bound, the kernel's sentinel


@dataclass
class BFSState:
    """Per-fragment state: hop counts (absent = unreached)."""

    hops: Dict[Node, int] = field(default_factory=dict)
    #: outer border nodes whose hop count changed since the last report
    dirty: Set[Node] = field(default_factory=set)
    #: dense-id mirror of ``hops`` for the CSR kernel
    _arr: Optional[np.ndarray] = None
    _arr_epoch: int = -1


def _bfs_from(fragment: Fragment, hops: Dict[Node, int],
              frontier: Iterable[Node]) -> Set[Node]:
    """Queue-based BFS resuming from ``frontier`` (in place); returns
    the nodes whose hop count improved."""
    graph = fragment.graph
    changed: Set[Node] = set()
    dq = deque((v, hops[v]) for v in frontier if v in hops)
    while dq:
        v, d = dq.popleft()
        if d > hops.get(v, _FAR):
            continue
        for w in graph.successors(v):
            if d + 1 < hops.get(w, _FAR):
                hops[w] = d + 1
                changed.add(w)
                dq.append((w, d + 1))
    return changed


class BFSProgram(PIEProgram):
    """Query: the source node.  Answer: ``{v: hop count}`` (-1 if
    unreached)."""

    name = "BFS"
    aggregator = MinAggregator()
    supports_csr = True
    route_to = "owner"

    def __init__(self, use_csr: bool = True):
        self.use_csr = use_csr

    def init_state(self, query: Node, fragment: Fragment) -> BFSState:
        return BFSState()

    def peval(self, query: Node, fragment: Fragment,
              state: BFSState) -> None:
        before = {v: state.hops[v] for v in fragment.outer
                  if v in state.hops}
        if self.use_csr:
            self._peval_csr(query, fragment, state)
        else:
            if fragment.graph.has_node(query) \
                    and 0 < state.hops.get(query, _FAR):
                state.hops[query] = 0
            if state.hops:
                # Resume from everything known (covers both the first run
                # and NI-mode re-runs seeded by applied messages).
                _bfs_from(fragment, state.hops, list(state.hops))
            state._arr = None
        for v in fragment.outer:
            if state.hops.get(v, _FAR) != before.get(v, _FAR):
                state.dirty.add(v)

    def _peval_csr(self, query: Node, fragment: Fragment,
                   state: BFSState) -> None:
        csr = fragment.csr()
        id_of = csr.id_of
        seeds = {id_of[v]: h for v, h in state.hops.items()}
        if fragment.graph.has_node(query):
            sid = id_of[query]
            seeds[sid] = min(seeds.get(sid, _FAR), 0)
        arr, _changed = csr_bfs(csr, seeds)
        state._arr = arr
        state._arr_epoch = fragment.csr_epoch
        state.hops = {v: h for v, h in zip(csr.node_of, arr.tolist())
                      if h < _FAR}

    def inceval(self, query: Node, fragment: Fragment, state: BFSState,
                message: ParamUpdates) -> None:
        if self.use_csr and fragment.csr_cached:
            changed = self._inceval_csr(fragment, state, message)
        else:
            frontier = []
            for (v, _name), hop in message.items():
                if hop < state.hops.get(v, _FAR):
                    state.hops[v] = hop
                    frontier.append(v)
            changed = _bfs_from(fragment, state.hops, frontier)
            changed.update(frontier)
        for v in changed:
            if v in fragment.outer:
                state.dirty.add(v)

    @staticmethod
    def _ensure_arr(fragment: Fragment, state: BFSState, csr) -> np.ndarray:
        """Dense-id mirror of ``state.hops``, rebuilt when the snapshot
        epoch moved or a dict mutation cleared the cache."""
        arr = state._arr
        if arr is None or state._arr_epoch != fragment.csr_epoch:
            arr = np.fromiter((state.hops.get(v, _FAR) for v in csr.node_of),
                              dtype=np.int64, count=csr.n)
            state._arr = arr
            state._arr_epoch = fragment.csr_epoch
        return arr

    def _inceval_csr(self, fragment: Fragment, state: BFSState,
                     message: ParamUpdates) -> Set[Node]:
        csr = fragment.csr()
        arr = self._ensure_arr(fragment, state, csr)
        id_of = csr.id_of
        seeds: Dict[int, int] = {}
        for (node, _name), hop in message.items():
            vid = id_of[node]
            seeds[vid] = min(hop, seeds.get(vid, _FAR))
        _arr, changed_ids = csr_bfs(csr, seeds, arr)
        node_of = csr.node_of
        changed: Set[Node] = set()
        for vid, h in zip(changed_ids.tolist(), arr[changed_ids].tolist()):
            node = node_of[vid]
            state.hops[node] = h
            changed.add(node)
        return changed

    def apply_message(self, query: Node, fragment: Fragment,
                      state: BFSState, message: ParamUpdates) -> None:
        for (v, _name), hop in message.items():
            if hop < state.hops.get(v, _FAR):
                state.hops[v] = hop
        state._arr = None

    def maintainable(self, delta) -> bool:
        """Every batch is maintainable: insertions fold through
        :meth:`on_graph_update`, reweights are invisible to hop counts,
        and deletions go through the bounded affected-region path."""
        return True

    def invalidates(self, delta) -> bool:
        """Hop counts ignore weights, so only deletions (and the mirror
        retirements they cause) can raise a converged value; a
        reweight-only batch stays on the monotone fold."""
        return delta.has_deletions

    def on_graph_update(self, query: Node, fragment: Fragment,
                        state: BFSState, delta) -> None:
        """Fold a monotone delta in: each inserted edge may open a
        shorter hop path from its tail's current level."""
        edges = (delta.as_insertions if hasattr(delta, "as_insertions")
                 else delta)
        hops = state.hops
        frontier = []
        for u, v, _w in edges:
            hu = 0 if u == query else hops.get(u, _FAR)
            if hu + 1 < hops.get(v, _FAR):
                hops[v] = hu + 1
                frontier.append(v)
        if frontier:
            state._arr = None
            changed = _bfs_from(fragment, hops, frontier)
            changed.update(frontier)
            for v in changed:
                if v in fragment.outer:
                    state.dirty.add(v)

    # ------------------------------------------------------------------
    # Bounded non-monotone maintenance (delete-aware IncEval)
    # ------------------------------------------------------------------
    def affected_seeds(self, query: Node, fragment: Fragment,
                       state: BFSState, delta) -> Set[Node]:
        """Direct hits: heads of deleted edges whose converged hop count
        was exactly supported by that edge, plus retired mirror copies.
        Both orientations are tested on undirected fragments."""
        hops = state.hops
        undirected = not fragment.graph.directed
        seeds: Set[Node] = set()

        def hit(u: Node, v: Node) -> bool:
            hu = hops.get(u, _FAR)
            return hu < _FAR and hops.get(v, _FAR) == hu + 1

        for u, v, _w in delta.deletions:
            if hit(u, v):
                seeds.add(v)
            if undirected and hit(v, u):
                seeds.add(u)
        seeds.update(delta.retired_nodes)
        return seeds

    def expand_affected(self, query: Node, fragment: Fragment,
                        state: BFSState, nodes: Set[Node]) -> Set[Node]:
        """Close the region along BFS-tree support chains
        (``hops[x] == hops[y] + 1``)."""
        hops = state.hops
        graph = fragment.graph
        local = {v for v in nodes if v in hops or graph.has_node(v)}
        if not local:
            return local
        if self.use_csr and fragment.csr_cached:
            return self._expand_affected_csr(fragment, state, local)
        affected = set(local)
        dq = deque(v for v in local
                   if graph.has_node(v) and hops.get(v, _FAR) < _FAR)
        while dq:
            y = dq.popleft()
            hy = hops[y]
            for x in graph.successors(y):
                if x not in affected and hops.get(x, _FAR) == hy + 1:
                    affected.add(x)
                    dq.append(x)
        return affected

    def _expand_affected_csr(self, fragment: Fragment, state: BFSState,
                             local: Set[Node]) -> Set[Node]:
        csr = fragment.csr()
        arr = self._ensure_arr(fragment, state, csr)
        id_of = csr.id_of
        seed_ids = [id_of[v] for v in local if v in id_of]
        out = set(local)
        if seed_ids:
            aff = csr_bfs_affected(csr, arr, seed_ids)
            node_of = csr.node_of
            out.update(node_of[i] for i in aff.tolist())
        return out

    def apply_nonmonotone(self, query: Node, fragment: Fragment,
                          state: BFSState, delta,
                          affected: Set[Node]) -> None:
        """Reset the affected vertices to unreached, re-seed them from
        unaffected in-neighbors on the mutated graph, fold the batch's
        insertions, and re-converge locally."""
        graph = fragment.graph
        hops = state.hops
        state._arr = None
        for v in affected:
            hops.pop(v, None)
        if delta is not None:
            for v in delta.retired_nodes:
                hops.pop(v, None)
        if self.use_csr and fragment.csr_cached:
            self._apply_nonmonotone_csr(query, fragment, state, delta,
                                        affected)
            return
        seeds: Dict[Node, int] = {}

        def offer(v: Node, h: int) -> None:
            if h < min(hops.get(v, _FAR), seeds.get(v, _FAR)):
                seeds[v] = h

        if graph.has_node(query) and query in affected:
            offer(query, 0)
        for x in affected:
            if not graph.has_node(x):
                continue
            for y in graph.predecessors(x):
                if y not in affected:
                    hy = hops.get(y, _FAR)
                    if hy < _FAR:
                        offer(x, hy + 1)
        if delta is not None:
            for u, v, _w in delta.as_insertions:
                hu = 0 if u == query else hops.get(u, _FAR)
                if hu < _FAR:
                    offer(v, hu + 1)
        frontier = []
        for v, h in seeds.items():
            hops[v] = h
            frontier.append(v)
        changed = _bfs_from(fragment, hops, frontier)
        changed.update(frontier)
        outer = fragment.outer
        for v in changed:
            if v in outer:
                state.dirty.add(v)

    def _apply_nonmonotone_csr(self, query: Node, fragment: Fragment,
                               state: BFSState, delta,
                               affected: Set[Node]) -> None:
        csr = fragment.csr()
        arr = self._ensure_arr(fragment, state, csr)
        id_of = csr.id_of
        aff_ids = [id_of[v] for v in affected if v in id_of]
        seeds = csr_bfs_reseed(csr, arr, aff_ids)
        if fragment.graph.has_node(query) and query in affected:
            sid = id_of[query]
            seeds[sid] = min(seeds.get(sid, _FAR), 0)
        hops = state.hops
        if delta is not None:
            for u, v, _w in delta.as_insertions:
                hu = 0 if u == query else hops.get(u, _FAR)
                vid = id_of.get(v)
                if vid is not None and hu + 1 < min(int(arr[vid]),
                                                    seeds.get(vid, _FAR)):
                    seeds[vid] = hu + 1
        _arr, changed_ids = csr_bfs(csr, seeds, arr)
        node_of = csr.node_of
        outer = fragment.outer
        for vid, h in zip(changed_ids.tolist(), arr[changed_ids].tolist()):
            node = node_of[vid]
            hops[node] = h
            if node in outer:
                state.dirty.add(node)

    def read_update_params(self, query: Node, fragment: Fragment,
                           state: BFSState) -> ParamUpdates:
        return {(v, "hop"): state.hops[v] for v in fragment.outer
                if v in state.hops}

    def report_entries(self, query: Node, fragment: Fragment,
                       state: BFSState, nodes: Set[Node]) -> ParamUpdates:
        """Per-node restriction of :meth:`read_update_params` — the
        session's incremental rebaseline probes exactly the vertices a
        non-monotone batch could have touched."""
        hops = state.hops
        outer = fragment.outer
        return {(v, "hop"): hops[v] for v in nodes
                if v in outer and v in hops}

    def read_changed_params(self, query: Node, fragment: Fragment,
                            state: BFSState) -> ParamUpdates:
        if not state.dirty:
            return {}
        dirty, state.dirty = state.dirty, set()
        return {(v, "hop"): state.hops[v] for v in dirty
                if v in state.hops}

    def assemble(self, query: Node, fragmentation: Fragmentation,
                 states: Dict[int, BFSState]) -> Dict[Node, int]:
        answer: Dict[Node, int] = {}
        for frag in fragmentation:
            hops = states[frag.fid].hops
            for v in frag.owned:
                answer[v] = hops.get(v, UNREACHED)
        return answer
