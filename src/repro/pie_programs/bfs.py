"""PIE program for breadth-first search (hop distances).

One of the stock applications the GRAPE lineage ships (libgrape-lite's
``bfs``): identical structure to SSSP with unit weights, but the
sequential algorithms are the textbook queue-based BFS and its resume-
from-frontier incremental variant — another illustration that plugging in
a different sequential pair is all a new query class needs.

With ``use_csr`` on (the default) both functions run as level-synchronous
frontier expansions over the fragment's CSR snapshot
(:func:`repro.kernels.csr_bfs`) — hop counts are integers, so the paths
are trivially identical — and dirty border hops feed the engine's
incremental coordinator protocol via ``read_changed_params``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

import numpy as np

from repro.core.aggregators import MinAggregator
from repro.core.pie import ParamUpdates, PIEProgram
from repro.graph.graph import Node
from repro.kernels import UNREACHED_HOPS, csr_bfs
from repro.partition.base import Fragment, Fragmentation

__all__ = ["BFSProgram", "BFSState"]

UNREACHED = -1  # hop count sentinel (kept integral, unlike SSSP's inf)

_FAR = UNREACHED_HOPS  # internal "not reached" bound, the kernel's sentinel


@dataclass
class BFSState:
    """Per-fragment state: hop counts (absent = unreached)."""

    hops: Dict[Node, int] = field(default_factory=dict)
    #: outer border nodes whose hop count changed since the last report
    dirty: Set[Node] = field(default_factory=set)
    #: dense-id mirror of ``hops`` for the CSR kernel
    _arr: Optional[np.ndarray] = None
    _arr_epoch: int = -1


def _bfs_from(fragment: Fragment, hops: Dict[Node, int],
              frontier: Iterable[Node]) -> Set[Node]:
    """Queue-based BFS resuming from ``frontier`` (in place); returns
    the nodes whose hop count improved."""
    graph = fragment.graph
    changed: Set[Node] = set()
    dq = deque((v, hops[v]) for v in frontier if v in hops)
    while dq:
        v, d = dq.popleft()
        if d > hops.get(v, _FAR):
            continue
        for w in graph.successors(v):
            if d + 1 < hops.get(w, _FAR):
                hops[w] = d + 1
                changed.add(w)
                dq.append((w, d + 1))
    return changed


class BFSProgram(PIEProgram):
    """Query: the source node.  Answer: ``{v: hop count}`` (-1 if
    unreached)."""

    name = "BFS"
    aggregator = MinAggregator()
    supports_csr = True
    route_to = "owner"

    def __init__(self, use_csr: bool = True):
        self.use_csr = use_csr

    def init_state(self, query: Node, fragment: Fragment) -> BFSState:
        return BFSState()

    def peval(self, query: Node, fragment: Fragment,
              state: BFSState) -> None:
        before = {v: state.hops[v] for v in fragment.outer
                  if v in state.hops}
        if self.use_csr:
            self._peval_csr(query, fragment, state)
        else:
            if fragment.graph.has_node(query) \
                    and 0 < state.hops.get(query, _FAR):
                state.hops[query] = 0
            if state.hops:
                # Resume from everything known (covers both the first run
                # and NI-mode re-runs seeded by applied messages).
                _bfs_from(fragment, state.hops, list(state.hops))
            state._arr = None
        for v in fragment.outer:
            if state.hops.get(v, _FAR) != before.get(v, _FAR):
                state.dirty.add(v)

    def _peval_csr(self, query: Node, fragment: Fragment,
                   state: BFSState) -> None:
        csr = fragment.csr()
        id_of = csr.id_of
        seeds = {id_of[v]: h for v, h in state.hops.items()}
        if fragment.graph.has_node(query):
            sid = id_of[query]
            seeds[sid] = min(seeds.get(sid, _FAR), 0)
        arr, _changed = csr_bfs(csr, seeds)
        state._arr = arr
        state._arr_epoch = fragment.csr_epoch
        state.hops = {v: h for v, h in zip(csr.node_of, arr.tolist())
                      if h < _FAR}

    def inceval(self, query: Node, fragment: Fragment, state: BFSState,
                message: ParamUpdates) -> None:
        if self.use_csr:
            changed = self._inceval_csr(fragment, state, message)
        else:
            frontier = []
            for (v, _name), hop in message.items():
                if hop < state.hops.get(v, _FAR):
                    state.hops[v] = hop
                    frontier.append(v)
            changed = _bfs_from(fragment, state.hops, frontier)
            changed.update(frontier)
        for v in changed:
            if v in fragment.outer:
                state.dirty.add(v)

    def _inceval_csr(self, fragment: Fragment, state: BFSState,
                     message: ParamUpdates) -> Set[Node]:
        csr = fragment.csr()
        arr = state._arr
        if arr is None or state._arr_epoch != fragment.csr_epoch:
            arr = np.fromiter((state.hops.get(v, _FAR) for v in csr.node_of),
                              dtype=np.int64, count=csr.n)
            state._arr = arr
            state._arr_epoch = fragment.csr_epoch
        id_of = csr.id_of
        seeds: Dict[int, int] = {}
        for (node, _name), hop in message.items():
            vid = id_of[node]
            seeds[vid] = min(hop, seeds.get(vid, _FAR))
        _arr, changed_ids = csr_bfs(csr, seeds, arr)
        node_of = csr.node_of
        changed: Set[Node] = set()
        for vid, h in zip(changed_ids.tolist(), arr[changed_ids].tolist()):
            node = node_of[vid]
            state.hops[node] = h
            changed.add(node)
        return changed

    def apply_message(self, query: Node, fragment: Fragment,
                      state: BFSState, message: ParamUpdates) -> None:
        for (v, _name), hop in message.items():
            if hop < state.hops.get(v, _FAR):
                state.hops[v] = hop
        state._arr = None

    def read_update_params(self, query: Node, fragment: Fragment,
                           state: BFSState) -> ParamUpdates:
        return {(v, "hop"): state.hops[v] for v in fragment.outer
                if v in state.hops}

    def read_changed_params(self, query: Node, fragment: Fragment,
                            state: BFSState) -> ParamUpdates:
        if not state.dirty:
            return {}
        dirty, state.dirty = state.dirty, set()
        return {(v, "hop"): state.hops[v] for v in dirty
                if v in state.hops}

    def assemble(self, query: Node, fragmentation: Fragmentation,
                 states: Dict[int, BFSState]) -> Dict[Node, int]:
        answer: Dict[Node, int] = {}
        for frag in fragmentation:
            hops = states[frag.fid].hops
            for v in frag.owned:
                answer[v] = hops.get(v, UNREACHED)
        return answer
