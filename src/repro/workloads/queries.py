"""Query generators (paper Section 7, "Queries").

The paper samples 10 SSSP source nodes per graph and generates 20 pattern
queries controlled by ``|Q| = (|V_Q|, |E_Q|)`` with labels drawn from the
data graph.  These generators do the same, deterministically.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.graph.graph import Graph, Node

__all__ = ["sample_sources", "generate_pattern", "generate_patterns"]


def sample_sources(graph: Graph, count: int, seed: int = 0) -> List[Node]:
    """Sample ``count`` distinct query sources, preferring nodes that can
    actually reach something (out-degree > 0)."""
    rng = random.Random(seed)
    nodes = [v for v in graph.nodes() if graph.out_degree(v) > 0]
    if not nodes:
        nodes = list(graph.nodes())
    if count >= len(nodes):
        return list(nodes)
    return rng.sample(nodes, count)


def generate_pattern(graph: Graph, num_nodes: int, num_edges: int, *,
                     seed: int = 0, ensure_match: bool = True) -> Graph:
    """Generate one connected pattern with labels drawn from ``graph``.

    With ``ensure_match=True`` the pattern is carved out of the data graph
    itself (a random connected subgraph), so it is guaranteed to have at
    least one match — the regime the paper's evaluation exercises.
    Otherwise labels are sampled independently.
    """
    rng = random.Random(seed)
    if num_edges < num_nodes - 1:
        raise ValueError("connected pattern needs >= num_nodes - 1 edges")

    if ensure_match:
        nodes, edges = _random_connected_subgraph(graph, num_nodes,
                                                  num_edges, rng)
        if nodes is not None:
            pattern = Graph(directed=True)
            rename = {v: f"u{i}" for i, v in enumerate(nodes)}
            for v in nodes:
                pattern.add_node(rename[v], graph.node_label(v))
            for u, v in edges:
                pattern.add_edge(rename[u], rename[v])
            return pattern

    # Fallback: random connected shape with sampled labels.
    labels = [graph.node_label(v) for v in graph.nodes()]
    pattern = Graph(directed=True)
    for i in range(num_nodes):
        pattern.add_node(f"u{i}", rng.choice(labels))
    placed = 0
    for i in range(1, num_nodes):  # spanning arborescence first
        j = rng.randrange(i)
        if rng.random() < 0.5:
            pattern.add_edge(f"u{j}", f"u{i}")
        else:
            pattern.add_edge(f"u{i}", f"u{j}")
        placed += 1
    attempts = 0
    while placed < num_edges and attempts < 50 * num_edges:
        attempts += 1
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a == b or pattern.has_edge(f"u{a}", f"u{b}"):
            continue
        pattern.add_edge(f"u{a}", f"u{b}")
        placed += 1
    return pattern


def _random_connected_subgraph(graph: Graph, num_nodes: int, num_edges: int,
                               rng: random.Random):
    """Try to carve a connected (in the undirected sense) subgraph out of
    the data graph; returns (None, None) when the graph is too sparse."""
    starts = list(graph.nodes())
    if not starts:
        return None, None
    rng.shuffle(starts)
    for start in starts[:20]:
        nodes = [start]
        chosen = {start}
        frontier = set(graph.neighbors(start))
        while len(nodes) < num_nodes and frontier:
            nxt = rng.choice(sorted(frontier, key=repr))
            frontier.discard(nxt)
            chosen.add(nxt)
            nodes.append(nxt)
            frontier.update(w for w in graph.neighbors(nxt)
                            if w not in chosen)
        if len(nodes) < num_nodes:
            continue
        internal = [(u, v) for u in nodes
                    for v in graph.successors(u) if v in chosen and u != v]
        if len(internal) < num_nodes - 1:
            continue
        rng.shuffle(internal)
        edges = internal[:num_edges]
        if _connected(nodes, edges):
            return nodes, edges
    return None, None


def _connected(nodes, edges) -> bool:
    adj = {v: set() for v in nodes}
    for u, v in edges:
        adj[u].add(v)
        adj[v].add(u)
    seen = set()
    stack = [nodes[0]]
    while stack:
        v = stack.pop()
        if v in seen:
            continue
        seen.add(v)
        stack.extend(adj[v] - seen)
    return len(seen) == len(nodes)


def generate_patterns(graph: Graph, count: int, num_nodes: int,
                      num_edges: int, seed: int = 0) -> List[Graph]:
    """A batch of patterns (the paper uses 20 per experiment)."""
    return [generate_pattern(graph, num_nodes, num_edges, seed=seed + i)
            for i in range(count)]
