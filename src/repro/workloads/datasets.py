"""Dataset stand-ins for the paper's evaluation graphs (Section 7).

Each factory produces a seeded synthetic graph with the structural property
that drives the corresponding experiment:

* :func:`traffic_like` — US road network: huge diameter, degree ~2-4,
  weighted, no labels (the paper notes traffic "does not carry labels").
* :func:`social_like` — liveJournal: power-law degrees, small diameter,
  100 labels, many components (the paper's liveJournal has 18293).
* :func:`knowledge_like` — DBpedia: power-law, label-rich (200 types).
* :func:`ratings_like` — movieLens: bipartite users x items with planted
  low-rank structure.

Sizes default to laptop scale (the paper's graphs are 10^7-10^8 edges; the
``scale`` parameter grows them when more fidelity is wanted).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.graph.generators import (assign_labels, bipartite_ratings_graph,
                                    grid_road_graph,
                                    preferential_attachment)
from repro.graph.graph import Graph

__all__ = ["traffic_like", "social_like", "knowledge_like", "ratings_like",
           "DATASETS", "load_dataset"]


def traffic_like(scale: float = 1.0, seed: int = 7) -> Graph:
    """Road-network stand-in: grid with diagonals, two-way weighted roads.

    Default ~3.6k nodes / ~14k directed edges; diameter grows with
    ``sqrt(scale)`` like a real road mesh.
    """
    side = max(4, int(60 * scale ** 0.5))
    return grid_road_graph(side, side, shortcut_prob=0.05, seed=seed)


def social_like(scale: float = 1.0, seed: int = 11,
                num_labels: int = 100) -> Graph:
    """Social-network stand-in: preferential attachment + labels + a few
    disconnected satellite components (liveJournal has thousands)."""
    n = max(50, int(4000 * scale))
    g = preferential_attachment(n, edges_per_node=5, seed=seed)
    # Satellite components: small cliques detached from the giant one.
    rng = random.Random(seed + 1)
    next_id = n
    for _ in range(max(2, int(12 * scale))):
        size = rng.randint(2, 5)
        members = list(range(next_id, next_id + size))
        next_id += size
        for i, u in enumerate(members):
            g.add_node(u)
            for v in members[i + 1:]:
                g.add_edge(u, v, weight=rng.uniform(0.1, 1.0))
                g.add_edge(v, u, weight=rng.uniform(0.1, 1.0))
    assign_labels(g, [f"l{i}" for i in range(num_labels)], seed=seed + 2)
    return g


def knowledge_like(scale: float = 1.0, seed: int = 13,
                   num_labels: int = 200) -> Graph:
    """Knowledge-base stand-in: power-law with a wide label alphabet."""
    n = max(60, int(3000 * scale))
    g = preferential_attachment(n, edges_per_node=4, seed=seed)
    assign_labels(g, [f"t{i}" for i in range(num_labels)], seed=seed + 1)
    return g


def ratings_like(scale: float = 1.0, seed: int = 17,
                 num_factors: int = 8) -> Tuple[Graph, np.ndarray, np.ndarray]:
    """movieLens stand-in: bipartite ratings with planted latent factors.

    Default ~400 users x 120 items x ~6000 ratings (the 71567 x 10681 x
    10M shape of movieLens, scaled down).
    """
    num_users = max(20, int(400 * scale))
    num_items = max(10, int(120 * scale))
    num_ratings = max(100, int(6000 * scale))
    return bipartite_ratings_graph(num_users, num_items, num_ratings,
                                   num_factors=num_factors, seed=seed)


DATASETS = {
    "traffic": traffic_like,
    "livejournal": social_like,
    "dbpedia": knowledge_like,
}


def load_dataset(name: str, scale: float = 1.0, seed: int | None = None) -> Graph:
    """Load a named dataset stand-in ("traffic", "livejournal", "dbpedia")."""
    try:
        factory = DATASETS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; "
                         f"available: {sorted(DATASETS)}") from None
    if seed is None:
        return factory(scale=scale)
    return factory(scale=scale, seed=seed)
