"""Workloads: dataset stand-ins and query generators."""

from repro.workloads.datasets import (DATASETS, knowledge_like, load_dataset,
                                      ratings_like, social_like,
                                      traffic_like)
from repro.workloads.queries import (generate_pattern, generate_patterns,
                                     sample_sources)

__all__ = [
    "traffic_like", "social_like", "knowledge_like", "ratings_like",
    "DATASETS", "load_dataset", "sample_sources", "generate_pattern",
    "generate_patterns",
]
