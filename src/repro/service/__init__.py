"""repro.service — plug-and-play serving over partitioned graphs.

One :class:`GrapeService` owns named graphs, a program registry, a
fragmentation cache and the standing-query sessions, so that registering a
PIE program once ("plug") lets any number of users run queries ("play")
against graphs that are partitioned exactly once::

    from repro.service import GrapeService

    service = GrapeService()
    service.load_graph("roads", g)
    ticket = service.play("sssp", query="airport", graph="roads")
    print(ticket.answer, ticket.metrics)
"""

from repro.service.facade import GrapeService, WatchHandle
from repro.service.tickets import QueryRequest, QueryTicket

__all__ = ["GrapeService", "WatchHandle", "QueryRequest", "QueryTicket"]
