"""Tickets: the unit of work a :class:`~repro.service.GrapeService` hands
back for every query it accepts.

A :class:`QueryTicket` is created ``pending``, moves to ``running`` when a
worker picks it up, and ends ``done`` (with ``answer`` and ``metrics``) or
``failed`` (with ``error``).  Synchronous ``play`` calls return finished
tickets; ``submit``/``submit_many`` return live tickets whose
:meth:`~QueryTicket.result` blocks until the pooled engine run completes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.engine import GrapeResult
from repro.runtime.metrics import RunMetrics

__all__ = ["QueryRequest", "QueryTicket"]


@dataclass
class QueryRequest:
    """One query to play: which program, against which named graph.

    ``program_kwargs`` are forwarded to the registry factory (e.g. a
    SubIso ``max_matches`` or a Sim ``candidate_index``).
    """

    program: str
    query: Any = None
    graph: str = ""
    program_kwargs: Dict[str, Any] = field(default_factory=dict)


class QueryTicket:
    """Handle for one accepted query.

    Thread-safe: the service completes the ticket from a pool thread while
    callers block in :meth:`result` or poll :attr:`status`.
    """

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    CANCELLED = "cancelled"

    def __init__(self, ticket_id: int, request: QueryRequest):
        self.ticket_id = ticket_id
        self.request = request
        self.submitted_at = time.time()
        self.finished_at: Optional[float] = None
        self._event = threading.Event()
        self._cancel_event = threading.Event()
        self._status = self.PENDING
        self._result: Optional[GrapeResult] = None
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # service-side transitions
    # ------------------------------------------------------------------
    def _mark_running(self) -> None:
        self._status = self.RUNNING

    def _finish(self, result: GrapeResult) -> None:
        self._result = result
        self._status = self.DONE
        self.finished_at = time.time()
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._status = (self.CANCELLED if self._cancel_event.is_set()
                        else self.FAILED)
        self.finished_at = time.time()
        self._event.set()

    # ------------------------------------------------------------------
    # caller-side views
    # ------------------------------------------------------------------
    @property
    def program(self) -> str:
        return self.request.program

    @property
    def query(self) -> Any:
        return self.request.query

    @property
    def graph(self) -> str:
        return self.request.graph

    @property
    def status(self) -> str:
        return self._status

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    @property
    def answer(self) -> Any:
        """The computed ``Q(G)``; ``None`` until the ticket is done."""
        return self._result.answer if self._result is not None else None

    @property
    def metrics(self) -> Optional[RunMetrics]:
        return self._result.metrics if self._result is not None else None

    @property
    def grape_result(self) -> Optional[GrapeResult]:
        """The full engine result (fragmentation, states, recoveries)."""
        return self._result

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been requested (the run may
        still be unwinding; :attr:`done` reports when it has)."""
        return self._cancel_event.is_set()

    # ------------------------------------------------------------------
    def cancel(self) -> bool:
        """Request cancellation of this query.

        Best-effort and asynchronous: the engine observes the flag at
        the next superstep boundary (process backend: the next receive
        poll, killing a mid-step worker), fails the run with
        :exc:`~repro.resilience.errors.QueryCancelled`, and releases the
        pool slot, admission ticket and read lock on the way out.  A
        ticket that already finished is unaffected.  Returns ``False``
        when the ticket was already done, ``True`` otherwise.
        """
        if self._event.is_set():
            return False
        self._cancel_event.set()
        return True

    # ------------------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the ticket finishes; True if it did in time."""
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None, *,
               cancel_on_timeout: bool = False) -> Any:
        """Block until done and return the answer (re-raising failures).

        With ``cancel_on_timeout=True`` a timeout also calls
        :meth:`cancel` before raising, so an abandoned query releases
        its pool slot instead of running to completion unobserved.
        """
        if not self._event.wait(timeout):
            if cancel_on_timeout:
                self.cancel()
            raise TimeoutError(
                f"ticket #{self.ticket_id} ({self.program!r} on "
                f"{self.graph!r}) not finished after {timeout}s")
        if self._error is not None:
            raise self._error
        return self._result.answer

    def __repr__(self) -> str:
        return (f"QueryTicket(#{self.ticket_id}, {self.program!r} on "
                f"{self.graph!r}, {self._status})")
