"""GrapeService: the paper's plug/play panels as one serving facade.

The paper's promise is that developers *plug* PIE programs in once and end
users just *play* queries; its Section 6 architecture adds a persistent
deployment — a partition manager that fragments each graph "once for all
queries Q posed on G", an API library of stored procedures, and a
lightweight transaction controller for updates.  This module ties the
repo's previously separate layers into that shape:

* **named graphs** — ``service.load_graph("social", g)``;
* **fragmentation cache** — partitions are cached by
  ``(graph, strategy, m)`` and shared by every query, standing or not;
* **plug** — programs come from a :class:`~repro.core.api.PIERegistry`
  (``service.plug("name", Factory)`` or the ``@service.program`` decorator);
* **play** — ``service.play("sssp", query="a", graph="social")`` returns a
  finished :class:`~repro.service.tickets.QueryTicket`;
  ``submit``/``submit_many`` run on a thread pool of engines, one fresh
  engine per query built from a shared
  :class:`~repro.core.engine.EngineConfig`;
* **updates** — ``service.watch(...)`` registers a standing query
  (a service-owned :class:`~repro.core.updates.ContinuousQuerySession`);
  ``service.update(graph, delta)`` applies a
  :class:`~repro.graph.delta.GraphDelta` — insertions, deletions,
  weight changes — to the shared fragmentation once and fans the
  per-fragment deltas out to every watcher, which maintain their
  answers incrementally — a monotone fold for insertions and
  answer-preserving reweights, the bounded affected-region path for
  deletions and weight increases — falling back to an in-session
  recompute only for programs without the maintenance hooks
  (``insert_edges`` / ``delete_edges`` / ``set_weights`` are sugar).

Queries on a graph run concurrently (they only read the fragmentation);
an update batch takes that graph's write lock, so it waits for in-flight
queries and blocks new ones while fragments are mutated.

With ``store_dir=...`` the service is **durable**: registered graphs are
snapshotted into a :class:`~repro.store.GraphStore`, every applied batch
is written ahead to the graph's delta WAL, an outgrown WAL is compacted
into a fresh snapshot, and construction warm-starts from the store —
see :mod:`repro.store` and the README's "Durability & recovery".
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import (Any, Callable, Dict, Iterable, List, Optional, Tuple,
                    Union)

from pathlib import Path

from repro.core.api import PIERegistry, default_registry
from repro.core.engine import EngineConfig, GrapeEngine
from repro.core.updates import (ContinuousQuerySession, EdgeInsertion,
                                NonMonotoneUpdateError, apply_delta)
from repro.graph.delta import FragmentDelta, GraphDelta, NormalizedDelta
from repro.graph.graph import Graph, Node
from repro.graph.io import read_edge_list
from repro.obs import events as obs_events
from repro.obs.diagnostics import SlowQueryLog, straggler_report
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceContext
from repro.optim.grouping import QueryGrouper
from repro.partition.base import Fragmentation, PartitionStrategy
from repro.partition.strategies import HashPartition
from repro.replication.admission import (AdmissionController,
                                         AdmissionRejected)
from repro.resilience import (BackendCircuitBreaker, DeadlineExceeded,
                              QueryCancelled, RetryPolicy, run_with_retry)
from repro.runtime import shm
from repro.runtime.executors import ExecutorBackend, WorkerProcessDied
from repro.runtime.metrics import ServiceMetrics
from repro.service.tickets import QueryRequest, QueryTicket
from repro.store.catalog import GraphStore, StoredGraph

__all__ = ["GrapeService", "WatchHandle"]

# (graph name, partition-strategy signature, num fragments m)
FragCacheKey = Tuple[str, str, int]


class _RWLock:
    """Many concurrent readers (queries) or one writer (update batch).

    Writer-preferring: once a writer is waiting, new readers queue behind
    it, so a steady query stream cannot starve an update batch.

    Read acquisition is **reentrant**: a thread already holding the read
    lock may re-enter ``read()`` even while a writer is queued.  Without
    this, a callback running under the read lock that re-reads through
    the service (the process backend's watch/refresh callback path does)
    would deadlock against its own writer-preference gate: the inner
    ``read()`` would queue behind a waiting writer that in turn waits for
    the outer read to be released.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writing = False
        self._local = threading.local()

    @contextmanager
    def read(self):
        depth = getattr(self._local, "read_depth", 0)
        if depth:
            # Reentrant re-acquisition: this thread already counts as one
            # of ``_readers``; entering the gate again could deadlock
            # behind a waiting writer.
            self._local.read_depth = depth + 1
            try:
                yield
            finally:
                self._local.read_depth -= 1
            return
        with self._cond:
            while self._writing or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        self._local.read_depth = 1
        try:
            yield
        finally:
            self._local.read_depth = 0
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


class WatchHandle:
    """A standing query registered with :meth:`GrapeService.watch`.

    The handle owns a :class:`ContinuousQuerySession` whose fragmentation
    is the service's shared one; updates arrive through the service
    (:meth:`GrapeService.update` and its sugar), never directly, so that
    fragments are mutated exactly once no matter how many watchers share
    them.
    """

    def __init__(self, watch_id: int, graph: str, program: str,
                 session: ContinuousQuerySession):
        self.watch_id = watch_id
        self.graph = graph
        self.program = program
        self.session = session
        self.refreshes = 0
        self.active = True

    @property
    def answer(self) -> Any:
        """The maintained ``Q(G)`` reflecting every applied update."""
        return self.session.answer

    @property
    def metrics(self):
        """Cumulative cost: initial run plus all maintenance rounds."""
        return self.session.metrics

    def straggler_report(self) -> Dict[str, Any]:
        """Per-worker skew verdict over this watch's recorded supersteps
        (see :func:`repro.obs.diagnostics.straggler_report`)."""
        return straggler_report(self.session.metrics)

    def cancel(self) -> None:
        """Stop maintaining this query; later updates skip it."""
        self.active = False

    def _refresh(self, touched: Dict[int, FragmentDelta]
                 ) -> Optional[Tuple[int, int, int, int, int, int, int,
                                     int]]:
        """Fold an applied update batch into the session; returns the
        delta (supersteps, bytes, messages, maintained, fallbacks,
        partial_resets, affected_vertices, delta_bytes_shipped) this
        maintenance round cost — measured per handle, so a batch that
        maintains one watcher and falls back for another charges each
        bucket its own session's outcome.

        Guarded against cancellation: a handle cancelled after the
        service snapshotted its watcher list (or from another thread
        while the batch is in flight) is left untouched and reports
        ``None`` instead of a delta.
        """
        if not self.active:
            return None
        m = self.session.metrics
        before = (m.supersteps, m.comm_bytes, m.comm_messages,
                  m.incremental_maintained, m.fallback_reruns,
                  m.partial_resets, m.affected_vertices,
                  m.delta_bytes_shipped)
        self.session.apply_update(touched)
        self.refreshes += 1
        return (m.supersteps - before[0], m.comm_bytes - before[1],
                m.comm_messages - before[2],
                m.incremental_maintained - before[3],
                m.fallback_reruns - before[4],
                m.partial_resets - before[5],
                m.affected_vertices - before[6],
                m.delta_bytes_shipped - before[7])

    def __repr__(self) -> str:
        state = "active" if self.active else "cancelled"
        return (f"WatchHandle(#{self.watch_id}, {self.program!r} on "
                f"{self.graph!r}, {state}, refreshes={self.refreshes})")


class GrapeService:
    """Unified serving facade over engines, registry and sessions.

    Parameters
    ----------
    engine:
        Shared :class:`EngineConfig` (or a template :class:`GrapeEngine`
        whose spec is extracted); every query runs on a fresh engine built
        from it.  Defaults to four workers.
    backend:
        Execution backend for every query this service runs:
        ``"serial"``, ``"thread"``, ``"process"`` or an
        :class:`~repro.runtime.executors.ExecutorBackend` instance.
        Overrides the engine config's ``backend`` field; ``None`` keeps
        it (which in turn falls back to the ``REPRO_BACKEND`` environment
        variable).  Honored by ``play``, ``submit``/``submit_many`` and
        the standing-query sessions created by ``watch``.
    registry:
        Program store; defaults to a private copy of the default GRAPE
        library so per-service plug-ins stay local.
    concurrency:
        Thread-pool width for ``submit``/``submit_many``.
    store_dir:
        Optional durability root.  When given, the service owns a
        :class:`~repro.store.GraphStore` there: registered graphs are
        snapshotted, every applied update batch is appended to the
        graph's delta WAL (and folded into a fresh snapshot once the WAL
        outgrows the compaction threshold), and construction
        **warm-starts** — every graph committed to the store is loaded
        (snapshot + WAL replay) and immediately servable, with no
        edge-list parsing and no eager re-partitioning (fragmentation
        cache entries rebuild lazily on first use).
    store_compact_threshold:
        WAL bytes beyond which an update triggers compaction (defaults
        to the store's own default).
    store_retain_generations:
        Superseded snapshot/WAL generations compaction keeps on disk
        for lagging replicas (store default: 0 — GC immediately).
    node_id:
        This writer's identity for fencing: recorded against the
        store's ``EPOCH`` file so a deposed primary rejoining after a
        failover is rejected at open (see
        :class:`~repro.replication.FailoverCoordinator`).
    admission:
        Optional :class:`~repro.replication.AdmissionController` gating
        every query (per-graph concurrency caps, bounded queues, typed
        shedding) — unset, every query is admitted, as before.
    grouping:
        Multi-query grouping (default on): identical concurrent read
        queries on the shared engine config coalesce into one engine
        run — the first arrival runs, the rest share its result
        (``stats.queries_grouped`` counts the shared ones).
    retry:
        Optional :class:`~repro.resilience.RetryPolicy`: transient
        infrastructure failures (a pooled worker death, a WAL append
        whose log was truncated back clean) are retried with seeded
        exponential backoff before the query is failed with
        :exc:`~repro.resilience.RetryExhausted`.  Logic errors,
        deadline misses and cancellations are never retried.
    degradation:
        Backend circuit breaker: ``True`` for defaults, or a configured
        :class:`~repro.resilience.BackendCircuitBreaker`.  Repeated
        infrastructure failures on a graph degrade its queries down the
        ``process → thread → serial`` chain; after the cooldown the
        configured backend is probed and restored on success.  Every
        transition is mirrored into ``stats``
        (``backend_degradations`` / ``backend_probes`` /
        ``backend_restorations``).
    deadline_s / heartbeat_timeout_s:
        Per-query time budget and hung-worker detection threshold,
        folded into the shared engine config (see
        :class:`~repro.core.engine.EngineConfig`).  A budget overrun
        fails the query with
        :exc:`~repro.resilience.DeadlineExceeded` (and is counted in
        ``stats.deadlines_exceeded``); a process worker that stops
        heart-beating is killed and, when checkpoints allow, replaced.
    """

    def __init__(self, *,
                 engine: Union[EngineConfig, GrapeEngine, None] = None,
                 backend: Union[str, "ExecutorBackend", None] = None,
                 registry: Optional[PIERegistry] = None,
                 concurrency: int = 4,
                 store_dir: Union[str, Path, None] = None,
                 store_compact_threshold: Optional[int] = None,
                 store_retain_generations: Optional[int] = None,
                 node_id: Optional[str] = None,
                 admission: Optional[AdmissionController] = None,
                 grouping: bool = True,
                 retry: Optional[RetryPolicy] = None,
                 degradation: Union[bool, BackendCircuitBreaker] = False,
                 deadline_s: Optional[float] = None,
                 heartbeat_timeout_s: Optional[float] = None,
                 tracing: bool = False,
                 slow_query_s: Optional[float] = None):
        if isinstance(engine, GrapeEngine):
            engine = engine.config
        self.engine_config = engine or EngineConfig()
        if backend is not None:
            self.engine_config = self.engine_config.replace(backend=backend)
        if deadline_s is not None:
            self.engine_config = self.engine_config.replace(
                deadline_s=deadline_s)
        if heartbeat_timeout_s is not None:
            self.engine_config = self.engine_config.replace(
                heartbeat_timeout_s=heartbeat_timeout_s)
        self.retry = retry
        if isinstance(degradation, BackendCircuitBreaker):
            self.breaker: Optional[BackendCircuitBreaker] = degradation
        else:
            self.breaker = BackendCircuitBreaker() if degradation else None
        if self.breaker is not None:
            self.breaker.on_transition = self._on_breaker_transition
        self.registry = (registry if registry is not None
                         else default_registry().copy())
        self.concurrency = max(1, concurrency)
        self.stats = ServiceMetrics()
        #: telemetry plane: ``tracing=True`` builds a span tree per
        #: query (reachable as ``ticket.grape_result.trace``);
        #: ``slow_query_s`` additionally keeps queries slower than the
        #: threshold — with their full span trees — in ``slow_queries``
        self.tracing = bool(tracing)
        self.slow_query_s = slow_query_s
        self.slow_queries: Optional[SlowQueryLog] = (
            SlowQueryLog(slow_query_s) if slow_query_s is not None
            else None)
        self.admission = admission
        self._grouper: Optional[QueryGrouper] = (QueryGrouper()
                                                 if grouping else None)
        self.node_id = node_id

        self._graphs: Dict[str, Graph] = {}
        self._frag_cache: Dict[FragCacheKey, Fragmentation] = {}
        # CSR snapshot counters of fragmentations that left the cache;
        # stats totals = this baseline + the live cached fragmentations.
        self._csr_counter_base = [0, 0]  # [built, invalidated]
        self._graph_locks: Dict[str, _RWLock] = {}
        # Serializes the control-plane mutators (watch registration and
        # insert_edges) per graph, so a watcher can never miss a batch
        # that lands between its initial run and its registration.
        self._mutation_locks: Dict[str, threading.RLock] = {}
        self._watches: Dict[str, List[WatchHandle]] = {}
        self._lock = threading.RLock()  # guards the dicts + stats above
        self._pool: Optional[ThreadPoolExecutor] = None
        self._ticket_ids = itertools.count(1)
        self._watch_ids = itertools.count(1)
        self._closed = False

        self.store: Optional[GraphStore] = None
        if store_dir is not None:
            kwargs: Dict[str, Any] = {"node_id": node_id}
            if store_compact_threshold is not None:
                kwargs["compact_threshold_bytes"] = store_compact_threshold
            if store_retain_generations is not None:
                kwargs["retain_generations"] = store_retain_generations
            self.store = GraphStore(store_dir, **kwargs)
            self._warm_start()

    def _warm_start(self) -> None:
        """Recover every committed graph from the store: load its
        snapshot, replay its WAL chain, and serve.

        No partitioning runs here.  When the snapshot carries the
        previous incarnation's canonical fragmentation (persisted at
        compaction or graceful shutdown) *and* its recorded
        ``(strategy, m)`` identity matches this service's config, the
        maintained partition is seeded straight into the fragmentation
        cache — the paper's "partitioned once for all queries"
        amortization surviving the restart.  Everything else (a
        config change, other engine configs' entries) rebuilds lazily on
        first use."""
        for name in self.store.names():
            self._install_recovered(name, self.store.load(name))
        self._sync_store_stats()

    def _install_recovered(self, name: str, stored: StoredGraph) -> None:
        """Register a store-recovered graph (and, when its persisted
        fragmentation matches this service's config, seed the cache).
        Shared by warm start and a replica's bootstrap/re-bootstrap."""
        self._graphs[name] = stored.graph
        # Any cached fragmentation was built from the *previous* graph
        # object (a no-op at warm start; load-bearing when a replica
        # re-bootstraps over live state).
        self._drop_cached(name)
        self.stats.warm_starts += 1
        canon_key = self._cache_key(name, self.engine_config)
        if (stored.fragmentation is not None
                and stored.frag_key is not None
                and tuple(stored.frag_key) == canon_key[1:]):
            self._frag_cache[canon_key] = stored.fragmentation

    # ------------------------------------------------------------------
    # graph management
    # ------------------------------------------------------------------
    def load_graph(self, name: str, graph: Graph, *,
                   replace: bool = False) -> None:
        """Register ``graph`` under ``name`` for querying."""
        if not isinstance(name, str) or not name:
            raise TypeError(f"graph name must be a non-empty string, "
                            f"got {name!r}")
        # The mutation lock spans registration *and* the snapshot
        # commit: an update cannot slip between them (its WAL append
        # needs the manifest the commit creates), and — unlike holding
        # the service-wide lock across a multi-second snapshot write —
        # queries and updates on *other* graphs proceed unhindered.
        with self._mutation_lock(name):
            with self._lock:
                if name in self._graphs and not replace:
                    raise ValueError(f"graph {name!r} already loaded; "
                                     "pass replace=True to swap it")
                if self._active_watches(name):
                    raise ValueError(f"graph {name!r} has standing "
                                     "queries; cancel them before "
                                     "replacing it")
                self._graphs[name] = graph
                self._drop_cached(name)
            if self.store is not None:
                self.store.persist_graph(name, graph)
                with self._lock:
                    self._sync_store_stats()

    def load_graph_file(self, name: str, path: Union[str, Path], *,
                        replace: bool = False) -> Graph:
        """Parse an edge-list file and register it — the *cold* path.

        Counted in ``stats.edge_lists_parsed``, which is how a
        warm-started service proves it never re-parsed: it serves the
        same graphs with that counter still at zero.
        """
        graph = read_edge_list(path)
        with self._lock:
            self.stats.edge_lists_parsed += 1
        self.load_graph(name, graph, replace=replace)
        return graph

    def unload_graph(self, name: str) -> Graph:
        """Forget a named graph (and its cached fragmentations).

        With a store attached the graph's persisted state is removed too
        — an unloaded graph must not resurrect on the next warm start.
        The mutation lock is held throughout so an in-flight update
        batch finishes (WAL append included) before the store entry
        disappears from under it.
        """
        with self._mutation_lock(name):
            with self._lock:
                if self._active_watches(name):
                    raise ValueError(f"graph {name!r} has standing "
                                     "queries; cancel them before "
                                     "unloading")
                graph = self._require_graph(name)
                del self._graphs[name]
                self._drop_cached(name)
                self._graph_locks.pop(name, None)
                self._watches.pop(name, None)
            if self.store is not None:
                self.store.remove(name)
            with self._lock:
                self._mutation_locks.pop(name, None)
        return graph

    def graphs(self) -> List[str]:
        with self._lock:
            return sorted(self._graphs)

    def graph(self, name: str) -> Graph:
        with self._lock:
            return self._require_graph(name)

    # ------------------------------------------------------------------
    # plug
    # ------------------------------------------------------------------
    def plug(self, name: str, factory: Callable, *,
             replace: bool = False) -> None:
        """Register a PIE program factory (the paper's *plug* panel)."""
        self.registry.register(name, factory, replace=replace)

    def program(self, name=None, *, replace: bool = False):
        """Decorator registering a program with this service's registry:
        ``@service.program("triangles")``."""
        return self.registry.program(name, replace=replace)

    def programs(self) -> List[str]:
        return self.registry.names()

    # ------------------------------------------------------------------
    # fragmentation cache
    # ------------------------------------------------------------------
    @staticmethod
    def _strategy_signature(strategy: PartitionStrategy) -> str:
        params = sorted(vars(strategy).items(), key=lambda kv: kv[0])
        return f"{type(strategy).__name__}({params!r})"

    def _cache_key(self, graph: str,
                   config: EngineConfig) -> FragCacheKey:
        strategy = config.partition or HashPartition()
        return (graph, self._strategy_signature(strategy),
                config.effective_fragments)

    def fragmentation(self, graph: str, *,
                      engine: Optional[EngineConfig] = None
                      ) -> Fragmentation:
        """The cached fragmentation a query on ``graph`` would use,
        partitioning now if absent (paper: "partitioned once for all
        queries Q posed on G")."""
        return self._fragmentation_for(graph, engine or self.engine_config)

    def _fragmentation_for(self, name: str,
                           config: EngineConfig) -> Fragmentation:
        key = self._cache_key(name, config)
        # Built while holding the service lock so a cold key is
        # partitioned exactly once even under concurrent submission, and
        # under the graph's read lock so the build never observes a
        # half-applied insertion batch.  (A writer inside ``write()``
        # never takes the service lock, so this nesting cannot deadlock.)
        with self._lock:
            graph = self._require_graph(name)
            frag = self._frag_cache.get(key)
            if frag is not None:
                self.stats.cache_hits += 1
                return frag
            self.stats.cache_misses += 1
            glock = self._graph_lock_locked(name)
            with glock.read():
                frag = config.build().make_fragmentation(graph)
            self._frag_cache[key] = frag
            return frag

    def _drop_cached(self, name: str) -> None:
        for key in [k for k in self._frag_cache if k[0] == name]:
            self._retire_fragmentation(self._frag_cache.pop(key))

    def _retire_fragmentation(self, frag: Fragmentation) -> None:
        """Preserve a dropped fragmentation's CSR counters in the stats
        baseline (its fragments are no longer summed by the sync) and
        unlink its published shared-memory segments — the cache entry
        was the last coordinator-side use of the token."""
        self._csr_counter_base[0] += frag.csr_snapshots_built
        self._csr_counter_base[1] += frag.csr_snapshot_invalidations
        shm.forget_token(frag.cache_token[0])

    def _sync_csr_stats(self) -> None:
        """Refresh the CSR snapshot counters from the live cache.

        Fragments count their own builds and drops (they happen deep in
        PIE programs and :func:`apply_insertions`); the service folds the
        totals into :class:`ServiceMetrics` whenever they may have moved.
        Callers must hold ``self._lock``.
        """
        built = self._csr_counter_base[0]
        inv = self._csr_counter_base[1]
        for frag in self._frag_cache.values():
            built += frag.csr_snapshots_built
            inv += frag.csr_snapshot_invalidations
        self.stats.csr_snapshots_built = built
        self.stats.csr_snapshot_invalidations = inv
        segs, mapped = shm.global_stats()
        self.stats.shm_segments_active = segs
        self.stats.shm_bytes_mapped = mapped

    # ------------------------------------------------------------------
    # play
    # ------------------------------------------------------------------
    def play(self, program: str, query: Any = None, *, graph: str,
             engine: Optional[EngineConfig] = None,
             **program_kwargs) -> QueryTicket:
        """Run one query synchronously; returns its finished ticket."""
        ticket = self._new_ticket(program, query, graph, program_kwargs)
        self._run_ticket(ticket, engine or self.engine_config)
        if ticket.error is not None:
            raise ticket.error
        return ticket

    def submit(self, program: str, query: Any = None, *, graph: str,
               engine: Optional[EngineConfig] = None,
               **program_kwargs) -> QueryTicket:
        """Queue one query on the engine pool; returns a live ticket."""
        ticket = self._new_ticket(program, query, graph, program_kwargs)
        # Enqueued under the lock so a concurrent close() cannot shut the
        # pool down between the closed-check and the submission (which
        # would leave the ticket forever pending).
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.concurrency,
                    thread_name_prefix="grape-service")
            self._pool.submit(self._run_ticket, ticket,
                              engine or self.engine_config)
        return ticket

    def submit_many(self, requests: Iterable[Union[QueryRequest, dict,
                                                   tuple]],
                    ) -> List[QueryTicket]:
        """Queue a batch of queries; tickets come back in request order.

        Each request is a :class:`QueryRequest`, a mapping with
        ``program``/``query``/``graph`` (plus optional
        ``program_kwargs``), or a ``(program, query, graph)`` tuple.
        """
        return [self.submit(req.program, req.query, graph=req.graph,
                            **req.program_kwargs)
                for req in map(self._coerce_request, requests)]

    @staticmethod
    def _coerce_request(req: Union[QueryRequest, dict, tuple]
                        ) -> QueryRequest:
        if isinstance(req, QueryRequest):
            return req
        if isinstance(req, dict):
            extra = {k: v for k, v in req.items()
                     if k not in ("program", "query", "graph",
                                  "program_kwargs")}
            kwargs = dict(req.get("program_kwargs", {}), **extra)
            return QueryRequest(program=req["program"],
                                query=req.get("query"),
                                graph=req["graph"],
                                program_kwargs=kwargs)
        if isinstance(req, tuple) and len(req) == 3:
            return QueryRequest(program=req[0], query=req[1], graph=req[2])
        raise TypeError(f"cannot interpret query request {req!r}")

    def _new_ticket(self, program: str, query: Any, graph: str,
                    program_kwargs: Dict[str, Any]) -> QueryTicket:
        if self._closed:
            raise RuntimeError("service is closed")
        request = QueryRequest(program=program, query=query, graph=graph,
                               program_kwargs=program_kwargs or {})
        return QueryTicket(next(self._ticket_ids), request)

    def _run_ticket(self, ticket: QueryTicket,
                    config: EngineConfig) -> None:
        if ticket.cancelled:
            # Cancelled while still queued: fail fast, never run.
            with self._lock:
                self.stats.queries_cancelled += 1
                self.stats.queries_failed += 1
            ticket._fail(QueryCancelled(
                f"ticket #{ticket.ticket_id} cancelled before it started"))
            return
        ticket._mark_running()
        try:
            result, grouped = self._grouped_run(ticket, config)
        except BaseException as exc:
            with self._lock:
                if isinstance(exc, AdmissionRejected):
                    self.stats.queries_shed += 1
                    obs_events.emit("query.shed", graph=ticket.graph,
                                    program=ticket.program)
                elif isinstance(exc, DeadlineExceeded):
                    self.stats.deadlines_exceeded += 1
                    obs_events.emit("query.deadline", graph=ticket.graph,
                                    program=ticket.program,
                                    budget_s=exc.budget_s)
                elif isinstance(exc, QueryCancelled):
                    self.stats.queries_cancelled += 1
                    obs_events.emit("query.cancelled", graph=ticket.graph,
                                    program=ticket.program)
                self.stats.queries_failed += 1
            ticket._fail(exc)
            return
        with self._lock:
            if grouped:
                # A follower: the leader's run was already observed;
                # count the served query without double-counting its
                # supersteps/bytes (they happened exactly once).
                self.stats.queries_served += 1
                self.stats.queries_grouped += 1
            else:
                self.stats.observe_run(result.metrics)
                self._sync_csr_stats()
        ticket._finish(result)

    def _grouped_run(self, ticket: QueryTicket, config: EngineConfig):
        """Run one query, coalescing with identical in-flight ones.

        Returns ``(result, grouped)`` where ``grouped`` marks a
        follower that shared a leader's engine run.  Grouping joins
        happen *before* admission: a follower consumes no run slot —
        sharing an answer is precisely how the tier survives a hot-key
        burst.  Only queries on the shared engine config group (an
        override's answer could differ in fragmentation-shaped ways).
        """
        grouper = self._grouper
        if grouper is None or config is not self.engine_config:
            return self._admit_and_execute(ticket, config), False
        key = grouper.key_for(ticket.graph, ticket.program, ticket.query,
                              ticket.request.program_kwargs)
        if key is None:  # unhashable query: run it ungrouped
            return self._admit_and_execute(ticket, config), False
        group, leader = grouper.lead_or_join(key)
        if leader:
            try:
                result = self._admit_and_execute(ticket, config)
            except BaseException as exc:
                grouper.finish(group, None, exc)
                raise
            grouper.finish(group, result)
            return result, False
        try:
            return group.wait(), True
        except QueryCancelled:
            if ticket.cancelled:
                raise
            # The *leader's* caller cancelled, not this one: its abort
            # must not take the followers down with it — re-run alone.
            return self._admit_and_execute(ticket, config), False

    def _admit_and_execute(self, ticket: QueryTicket,
                           config: EngineConfig):
        if self.admission is None:
            obs_events.emit("query.admitted", graph=ticket.graph,
                            program=ticket.program)
            return self._execute(ticket, config)
        with self.admission.admit(ticket.graph):
            obs_events.emit("query.admitted", graph=ticket.graph,
                            program=ticket.program)
            return self._execute(ticket, config)

    def _execute(self, ticket: QueryTicket, config: EngineConfig):
        prog = self.registry.create(ticket.program,
                                    **ticket.request.program_kwargs)
        frag = self._fragmentation_for(ticket.graph, config)
        glock = self._graph_lock(ticket.graph)
        cancel = ticket._cancel_event
        # A slow-query threshold implies tracing: a slow-log entry
        # without its span tree could not answer "where did it go".
        ctx = (TraceContext("query", program=ticket.program,
                            graph=ticket.graph,
                            ticket=ticket.ticket_id)
               if self.tracing or self.slow_queries is not None else None)

        def attempt():
            run_config, used = config, None
            if self.breaker is not None:
                configured = config.build()._resolve_backend().name
                used = self.breaker.resolve(ticket.graph, configured)
                if used != configured:
                    run_config = config.replace(backend=used)
            span = None
            if ctx is not None:
                span = ctx.root.child("engine.run")
                if used is not None:
                    span.tags["backend"] = used
            try:
                with glock.read():
                    result = run_config.build().run(
                        prog, ticket.query, fragmentation=frag,
                        cancel=cancel, trace=span)
            except WorkerProcessDied:
                # Infrastructure, not logic: feed the breaker.  Other
                # failures (bad queries, deadline misses) say nothing
                # about the backend's health.
                if used is not None:
                    self.breaker.record_failure(ticket.graph, used)
                raise
            finally:
                if span is not None:
                    span.finish()
            if used is not None:
                self.breaker.record_success(ticket.graph, used)
            return result

        if self.retry is None:
            result = attempt()
        else:
            def on_retry(attempt_index, exc):
                with self._lock:
                    self.stats.retries_total += 1
                    if attempt_index == 0:
                        self.stats.queries_retried += 1
                obs_events.emit("query.retried", graph=ticket.graph,
                                program=ticket.program,
                                attempt=attempt_index + 1,
                                error=type(exc).__name__)

            result = run_with_retry(attempt, self.retry, on_retry=on_retry)
        if ctx is not None:
            ctx.finish()
            result.trace = ctx.root
            self._note_slow(ticket, ctx.root)
        return result

    def _note_slow(self, ticket: QueryTicket, root) -> None:
        """Feed the slow-query log; counts and emits on threshold."""
        if self.slow_queries is None:
            return
        entry = self.slow_queries.offer(ticket.program, ticket.graph,
                                        ticket.query, root.duration_s,
                                        trace=root)
        if entry is not None:
            with self._lock:
                self.stats.queries_slow += 1
            obs_events.emit("query.slow", graph=ticket.graph,
                            program=ticket.program,
                            duration_s=root.duration_s,
                            threshold_s=self.slow_query_s)

    # ------------------------------------------------------------------
    # standing queries and updates
    # ------------------------------------------------------------------
    def watch(self, program: str, query: Any = None, *, graph: str,
              **program_kwargs) -> WatchHandle:
        """Register a standing query; its answer is maintained under
        :meth:`update` (and its ``insert_edges`` / ``delete_edges`` /
        ``set_weights`` sugar).

        Standing queries always run on the service's shared engine config
        and fragmentation, so one update batch serves all of them.
        """
        # The mutation lock spans initial run *and* registration: an
        # insert_edges batch either completes before the session's
        # initial run or sees the handle registered — it can never land
        # in between and be silently missed by this watcher.
        with self._mutation_lock(graph):
            prog = self.registry.create(program, **program_kwargs)
            frag = self._fragmentation_for(graph, self.engine_config)
            glock = self._graph_lock(graph)
            with glock.read():
                session = ContinuousQuerySession(
                    self.engine_config.build(), prog, query,
                    fragmentation=frag)
            handle = WatchHandle(next(self._watch_ids), graph, program,
                                 session)
            with self._lock:
                self._watches.setdefault(graph, []).append(handle)
                self.stats.watches_started += 1
                self.stats.observe_run(session.metrics)
                self._sync_csr_stats()
        return handle

    def update(self, graph: str, delta: GraphDelta) -> List[WatchHandle]:
        """Apply an update batch — insertions, deletions, weight changes
        — to a named graph.

        The batch is normalized first (deduped, no-ops dropped); an
        empty or duplicate-only batch is a **true no-op**: nothing is
        mutated, no cache token or CSR epoch moves, no watcher runs.

        Otherwise the shared fragmentation is updated in place — border
        sets and ``G_P`` maintained, mirror copies retired under
        deletions, no re-partition — and every active watcher refreshes
        its answer: incrementally when its program can maintain the
        batch (:meth:`~repro.core.pie.PIEProgram.maintainable`), by the
        recompute fallback otherwise.  Cached fragmentations built under
        *other* engine configs are invalidated (they would go stale) and
        lazily rebuilt on next use.  Returns the refreshed handles.

        A watcher whose program opted out of the recompute fallback
        (``recompute_fallback = False``) and rejects the batch is
        **cancelled** — its answer can never match the mutated graph
        again — and its :class:`NonMonotoneUpdateError` is re-raised
        after every other watcher has been refreshed, so the rest of the
        system stays consistent.
        """
        with self._mutation_lock(graph):
            with self._lock:
                if self._closed:
                    raise RuntimeError("service is closed")
                g = self._require_graph(graph)
                # Captured under the same lock hold as the closed
                # check: close() detaches the store atomically with
                # setting _closed, so a sink captured here is never
                # silently None for a batch close() will then flush.
                wal = self._wal_sink(graph)

            # Normalized outside the write lock: the mutation lock
            # already excludes every other writer, and concurrent
            # readers never mutate the graph.
            norm = delta.normalize(g)
            if not norm:
                return []
            return self._apply_batch(graph, norm, wal=wal, compact=True)

    def _apply_batch(self, graph: str, norm: NormalizedDelta, *,
                     wal=None, compact: bool = False
                     ) -> List[WatchHandle]:
        """Apply one already-normalized, non-empty batch: mutate the
        shared fragmentation (or bare graph), optionally WAL + compact,
        and fan the per-fragment deltas out to every active watcher.

        The one write path both roles share: the primary's
        :meth:`update` calls it with a WAL sink and compaction enabled;
        a :class:`~repro.replication.ReplicaService` calls it for every
        batch tailed off the primary's WAL — same fragmentation
        maintenance, same watcher fan-out, no re-logging.  Callers hold
        the graph's mutation lock.
        """
        with self._lock:
            handles = self._active_watches(graph)
            canon_key = self._cache_key(graph, self.engine_config)
            canon = self._frag_cache.get(canon_key)
            glock = self._graph_lock_locked(graph)
            g = self._require_graph(graph)
            for key in [k for k in self._frag_cache
                        if k[0] == graph and k != canon_key]:
                self._retire_fragmentation(self._frag_cache.pop(key))
                self.stats.cache_invalidations += 1

        deltas: List[Tuple[int, int, int, int, int, int, int, int]] = []
        refreshed: List[WatchHandle] = []
        rejected: Optional[NonMonotoneUpdateError] = None
        with glock.write():
            if canon is not None:
                touched = apply_delta(canon, norm, wal=wal)
            else:
                # No fragmentation yet (and hence no watchers):
                # mutate the base graph directly.
                norm.apply_to(g)
                touched = {}
                if wal is not None:
                    wal(norm, 0)
            if compact and self.store is not None:
                # Fold an outgrown WAL into a fresh snapshot while
                # the write lock still excludes readers — the
                # snapshot must not observe a half-applied batch.
                # The canonical fragmentation rides along so a
                # restart can skip re-partitioning.
                self.store.maybe_compact(
                    graph, g, fragmentation=canon,
                    frag_key=(list(canon_key[1:])
                              if canon is not None else None))
            for handle in handles:
                # Re-checked here (and inside _refresh): the handle
                # may have been cancelled since the snapshot above.
                try:
                    cost = handle._refresh(touched)
                except NonMonotoneUpdateError as exc:
                    # An opt-out program rejected the batch after the
                    # fragments were mutated: its answer can never be
                    # correct again, so the watch is cancelled — and
                    # the fan-out continues, keeping every *other*
                    # watcher consistent with the mutated graph.
                    handle.cancel()
                    if rejected is None:
                        rejected = exc
                    continue
                if cost is not None:
                    deltas.append(cost)
                    refreshed.append(handle)

        with self._lock:
            self.stats.updates_applied += 1
            for (supersteps, nbytes, msgs, maintained, fallbacks,
                 partial_resets, affected_vertices, delta_bytes) in deltas:
                self.stats.observe_maintenance(
                    supersteps, nbytes, msgs, maintained=maintained,
                    fallbacks=fallbacks, partial_resets=partial_resets,
                    affected_vertices=affected_vertices,
                    delta_bytes=delta_bytes)
            self._sync_csr_stats()
            self._sync_store_stats()
        if rejected is not None:
            raise rejected
        return refreshed

    def insert_edges(self, graph: str,
                     edges: Iterable[EdgeInsertion]) -> List[WatchHandle]:
        """Apply an insertion batch (:meth:`update` sugar).

        Re-inserting an existing edge with a lower weight is a
        maintainable decrease; with a higher weight it becomes a
        non-monotone update served through the recompute fallback (no
        longer an error).
        """
        return self.update(graph, GraphDelta.from_insertions(edges))

    def delete_edges(self, graph: str,
                     pairs: Iterable[Tuple[Node, Node]]
                     ) -> List[WatchHandle]:
        """Delete a batch of edges (:meth:`update` sugar)."""
        return self.update(graph, GraphDelta.from_deletions(pairs))

    def set_weights(self, graph: str,
                    triples: Iterable[EdgeInsertion]) -> List[WatchHandle]:
        """Reweight a batch of existing edges (:meth:`update` sugar)."""
        return self.update(graph, GraphDelta.from_weight_changes(triples))

    def watches(self, graph: Optional[str] = None) -> List[WatchHandle]:
        """Active standing queries, optionally for one graph."""
        with self._lock:
            names = [graph] if graph is not None else list(self._watches)
            return [h for n in names
                    for h in self._watches.get(n, []) if h.active]

    def _active_watches(self, graph: str) -> List[WatchHandle]:
        return [h for h in self._watches.get(graph, []) if h.active]

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _require_graph(self, name: str) -> Graph:
        try:
            return self._graphs[name]
        except KeyError:
            raise ValueError(f"no graph loaded under {name!r}; "
                             f"available: {sorted(self._graphs)}") from None

    def _graph_lock(self, name: str) -> _RWLock:
        with self._lock:
            return self._graph_lock_locked(name)

    def _graph_lock_locked(self, name: str) -> _RWLock:
        lock = self._graph_locks.get(name)
        if lock is None:
            lock = self._graph_locks[name] = _RWLock()
        return lock

    def _mutation_lock(self, name: str) -> threading.RLock:
        with self._lock:
            lock = self._mutation_locks.get(name)
            if lock is None:
                lock = self._mutation_locks[name] = threading.RLock()
            return lock

    def _wal_sink(self, name: str):
        """The durability hook handed to :func:`apply_delta` — appends
        each applied batch to the graph's WAL (``None`` without a
        store).

        With a retry policy configured, a failed append is retried under
        it: :meth:`~repro.store.wal.DeltaWAL.append` truncates the log
        back to its last durable record before raising
        :exc:`~repro.store.wal.WALWriteError`, so a re-append never
        duplicates a half-written record.
        """
        if self.store is None:
            return None
        store = self.store

        def sink(norm, seq: int) -> None:
            if self.retry is not None:
                run_with_retry(lambda: store.append_delta(name, norm, seq),
                               self.retry)
            else:
                store.append_delta(name, norm, seq)
        return sink

    def _on_breaker_transition(self, kind: str, graph: str,
                               src: str, dst: str) -> None:
        with self._lock:
            if kind == "degrade":
                self.stats.backend_degradations += 1
            elif kind == "probe":
                self.stats.backend_probes += 1
            elif kind == "restore":
                self.stats.backend_restorations += 1

    def _sync_store_stats(self) -> None:
        """Mirror the store's counters into :class:`ServiceMetrics`
        (same pattern as the CSR snapshot counters)."""
        if self.store is None:
            return
        m = self.store.metrics
        self.stats.snapshots_written = m.snapshots_written
        self.stats.wal_appends = m.wal_appends
        self.stats.wal_replayed = m.wal_replayed

    def _flush_store(self, store: GraphStore) -> None:
        """Graceful-shutdown checkpoint: fold each graph's pending WAL
        into a fresh snapshot, bundling the canonical fragmentation so
        the next warm start skips both replay and re-partitioning.

        A crash skips this — then warm start recovers via snapshot + WAL
        replay and re-partitions lazily, which is exactly the degraded
        mode the WAL exists for.

        Each graph is flushed under its mutation lock: an in-flight
        ``update()`` finishes (WAL append included) before its graph is
        snapshotted, so the shutdown checkpoint can never capture a
        half-applied batch.  (``update`` itself refuses to start once
        ``close()`` has marked the service closed.)
        """
        with self._lock:
            names = [name for name in self._graphs if name in store]
        for name in names:
            with self._mutation_lock(name):
                with self._lock:
                    g = self._graphs.get(name)
                    if g is None:  # unloaded since the snapshot above
                        continue
                    canon_key = self._cache_key(name, self.engine_config)
                    canon = self._frag_cache.get(canon_key)
                    key = list(canon_key[1:])
                stored_key = store.fragmentation_key(name)
                dirty = store.has_pending_wal(name)
                frag_missing = canon is not None and stored_key != key
                if dirty or frag_missing:
                    store.persist_graph(name, g, fragmentation=canon,
                                        frag_key=(key if canon is not None
                                                  else None))
        with self._lock:
            # self.store is already detached (close() owns it), so sync
            # the final counters from the store directly
            self.stats.snapshots_written = store.metrics.snapshots_written
            self.stats.wal_appends = store.metrics.wal_appends
            self.stats.wal_replayed = store.metrics.wal_replayed

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def metrics_registry(self) -> MetricsRegistry:
        """Snapshot every :class:`ServiceMetrics` field into a
        :class:`~repro.obs.registry.MetricsRegistry`, plus derived
        rates and live gauges.  The snapshot is reflection-driven, so a
        counter added to ``ServiceMetrics`` later is exported without
        touching this method."""
        with self._lock:
            self._sync_csr_stats()
            self._sync_store_stats()
            reg = MetricsRegistry.from_object(
                self.stats,
                gauge_fields=("shm_segments_active", "shm_bytes_mapped",
                              "skew_ratio_max"))
            reg.gauge("repro_cache_hit_rate").set(self.stats.cache_hit_rate)
            reg.gauge("repro_maintained_ratio").set(
                self.stats.maintained_ratio)
            reg.gauge("repro_graphs_loaded").set(float(len(self._graphs)))
            reg.gauge("repro_watches_active").set(float(
                sum(len(v) for v in self._watches.values())))
        return reg

    def expose_metrics(self) -> str:
        """Prometheus-style text exposition of the service's metrics."""
        return self.metrics_registry().expose_text()

    def debug_report(self) -> Dict[str, Any]:
        """One-call, JSON-serializable operational dump: graphs and
        watches, the full metrics snapshot, recent structured events
        (with per-kind totals), the slow-query log with span trees,
        straggler diagnostics, and breaker transitions."""
        registry = self.metrics_registry()
        log = obs_events.active()
        with self._lock:
            graphs = {name: {"nodes": g.num_nodes, "edges": g.num_edges,
                             "watches": len(self._watches.get(name, ()))}
                      for name, g in self._graphs.items()}
            breaker_transitions = (list(self.breaker.transitions)
                                   if self.breaker is not None else [])
        hist = self.stats.worker_time_hist
        return {
            "graphs": graphs,
            "metrics": registry.to_json(),
            "events": {"counts": log.counts(),
                       "recent": [e.to_dict() for e in log.tail(50)]},
            "slow_queries": (self.slow_queries.to_dicts()
                             if self.slow_queries is not None else []),
            "stragglers": {
                "skew_ratio_max": self.stats.skew_ratio_max,
                "straggler_steps": self.stats.straggler_steps,
                "worker_time_p50_s": hist.quantile(0.5),
                "worker_time_p99_s": hist.quantile(0.99),
            },
            "breaker_transitions": breaker_transitions,
        }

    def close(self, *, flush: bool = True) -> None:
        """Drain the engine pool, checkpoint the store (fold pending
        WALs + canonical fragmentations into fresh snapshots) and refuse
        further queries.

        ``flush=False`` skips the shutdown checkpoint — the store is
        left exactly as the write path maintained it (snapshot + WAL),
        which is also what a crash leaves behind; tests and benchmarks
        use it to exercise the WAL-replay recovery path.
        """
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
            store, self.store = self.store, None
        if pool is not None:
            pool.shutdown(wait=True)
        if store is not None:
            try:
                if flush:
                    self._flush_store(store)
            finally:
                store.close()
        # Retire the cached fragmentations *after* the flush (which
        # still reads them): unlinks their published shared-memory
        # segments so a closed service leaves nothing in /dev/shm.
        with self._lock:
            cache, self._frag_cache = self._frag_cache, {}
            for frag in cache.values():
                self._retire_fragmentation(frag)

    def __enter__(self) -> "GrapeService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            self._sync_csr_stats()
            return (f"GrapeService(graphs={sorted(self._graphs)}, "
                    f"programs={len(self.registry)}, "
                    f"cached_fragmentations={len(self._frag_cache)}, "
                    f"watches={sum(len(v) for v in self._watches.values())},"
                    f" {self.stats!r})")
