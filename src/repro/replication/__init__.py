"""Replication tier: WAL-tailing read replicas, failover, admission.

The durable store (:mod:`repro.store`) made a serving node's state a
snapshot + delta-WAL chain on shared storage; this package turns that
chain into a **primary/replica serving tier**:

* :class:`ReplicaService` — a read-only :class:`~repro.service.GrapeService`
  that warm-starts from the latest snapshot and *tails* the primary's
  WAL (:meth:`~repro.store.catalog.GraphStore.follow`), applying every
  batch to its graphs, fragmentations and standing watches — reads are
  served at bounded, observable lag, and watch answers are maintained
  by replaying the update, never by re-running the query.
* :class:`FailoverCoordinator` — promotes the most-advanced replica by
  ``(generation, seq)`` and fences the deposed primary via the store's
  ``EPOCH`` file (:class:`~repro.store.catalog.FencedError`).
* :class:`AdmissionController` — per-graph concurrency caps, bounded
  queues and typed load shedding (:class:`AdmissionRejected`), plugged
  into any service via ``GrapeService(admission=...)``.

Submodules are imported lazily (PEP 562): the service facade imports
:mod:`repro.replication.admission` while :mod:`.replica` imports the
facade back, and laziness is what keeps that cycle inert.
"""

from __future__ import annotations

__all__ = ["AdmissionController", "AdmissionRejected",
           "FailoverCoordinator", "ReadOnlyReplicaError",
           "ReplicaService", "read_epoch", "write_epoch"]

_EXPORTS = {
    "AdmissionController": "repro.replication.admission",
    "AdmissionRejected": "repro.replication.admission",
    "ReplicaService": "repro.replication.replica",
    "ReadOnlyReplicaError": "repro.replication.replica",
    "FailoverCoordinator": "repro.replication.failover",
    "read_epoch": "repro.replication.failover",
    "write_epoch": "repro.replication.failover",
}


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}")
    import importlib
    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
