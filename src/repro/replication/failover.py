"""Failover: elect the most-advanced replica, fence the deposed primary.

The coordinator's whole protocol is three steps against shared storage:

1. **Fence.**  Bump the epoch in the store root's ``EPOCH`` file (with
   no leader yet).  Every writable store handle re-reads that file on
   each write, so the moment the bump lands, a still-running deposed
   primary's next append raises
   :class:`~repro.store.catalog.FencedError` — it can no longer ack
   updates that the new primary would not have.
2. **Elect.**  Let every candidate replica drain the (now quiescent)
   WAL chain, then pick the one with the greatest position vector —
   per graph the ``(generation, seq)`` its follower reached.  Because
   the chain is totally ordered and fenced, the most-advanced replica
   has applied a superset of every other's acked state: promoting it
   loses no acked update.
3. **Publish + promote.**  Write the winner's id as leader at the new
   epoch, then :meth:`~repro.replication.ReplicaService.promote` it.
   A deposed primary that *restarts* and tries to reopen the store
   under its own name is rejected at open (the published leader is
   someone else); one that kept running is already fenced by step 1.

No consensus service is modeled — the EPOCH file on shared storage
plays the role the paper's coordinator (and production systems' etcd/
ZooKeeper) plays; what this module reproduces is the *fencing and
election discipline* on top of the WAL chain.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from repro.ioutil import atomic_write_bytes
from repro.obs import events as _events
from repro.replication.replica import ReplicaService
from repro.resilience import faults as _faults
from repro.resilience.errors import FailoverInterrupted
from repro.store.catalog import EPOCH_FILE

__all__ = ["FailoverCoordinator", "read_epoch", "write_epoch"]


def read_epoch(store_root: Union[str, Path]) -> Tuple[int, Optional[str]]:
    """The fencing state ``(epoch, leader)`` at a store root;
    ``(0, None)`` when no coordinator ever wrote one."""
    try:
        data = json.loads((Path(store_root) / EPOCH_FILE).read_text(
            encoding="utf-8"))
        return int(data["epoch"]), data.get("leader")
    except (OSError, json.JSONDecodeError, KeyError, ValueError):
        return 0, None


def write_epoch(store_root: Union[str, Path], epoch: int,
                leader: Optional[str]) -> None:
    """Atomically publish a fencing epoch (tmp write + rename, same
    durability discipline as the store's manifests)."""
    blob = json.dumps({"epoch": epoch, "leader": leader},
                      indent=2, sort_keys=True).encode("utf-8")
    atomic_write_bytes(Path(store_root) / EPOCH_FILE, blob)


class FailoverCoordinator:
    """Runs the fence → elect → promote protocol over one store root."""

    def __init__(self, store_root: Union[str, Path]):
        self.root = Path(store_root)

    # ------------------------------------------------------------------
    def epoch(self) -> Tuple[int, Optional[str]]:
        return read_epoch(self.root)

    def fence(self) -> int:
        """Bump the epoch with no leader: from this point the previous
        primary's writes are rejected.  Returns the new epoch."""
        epoch, _leader = read_epoch(self.root)
        new_epoch = epoch + 1
        write_epoch(self.root, new_epoch, None)
        _events.emit("failover.fence", epoch=new_epoch)
        return new_epoch

    def promote(self, replicas: Sequence[ReplicaService]
                ) -> ReplicaService:
        """Fail over to the most-advanced of ``replicas``.

        Fences first, then lets every candidate drain the chain, elects
        by position vector (ties broken by replica id, so the outcome
        is deterministic), publishes the winner as leader and promotes
        it.  Returns the new primary.

        The ``replication.promote`` fault site sits between fence and
        publish — the promote-race window.  A *crash* there raises
        :exc:`~repro.resilience.errors.FailoverInterrupted`, leaving
        the epoch bumped with **no leader**: the old primary stays
        fenced, no replica was promoted, and a re-run of ``promote``
        (the coordinator restarting) completes the failover at a fresh
        epoch with nothing lost.  A *delay* widens the window instead.
        """
        if not replicas:
            raise ValueError("cannot fail over with no replicas")
        new_epoch = self.fence()
        fault = _faults.check("replication.promote", key=str(self.root))
        if fault is not None:
            if fault.kind == "crash":
                raise FailoverInterrupted(
                    f"injected coordinator crash after fencing epoch "
                    f"{new_epoch} (no leader published)")
            if fault.kind == "delay":
                time.sleep(float(fault.param("delay_s", 0.05)))
        for replica in replicas:
            replica.sync()
        winner = max(replicas,
                     key=lambda r: (r.position_vector(), r.replica_id))
        write_epoch(self.root, new_epoch, winner.replica_id)
        winner.promote(epoch=new_epoch)
        _events.emit("failover.promote", epoch=new_epoch,
                     leader=winner.replica_id)
        return winner

    def __repr__(self) -> str:
        epoch, leader = read_epoch(self.root)
        return (f"FailoverCoordinator({str(self.root)!r}, epoch={epoch}, "
                f"leader={leader!r})")
