"""Admission control: per-graph concurrency caps with load shedding.

A serving tier sized for steady traffic dies on bursts unless it can
say no.  The controller in this module is the service facade's gate:
every query must :meth:`~AdmissionController.admit` before it may touch
an engine.  Per graph it allows at most ``max_concurrent`` queries to
run; up to ``max_queue`` more may wait (bounded, so memory is bounded);
anything beyond that is **shed immediately** with a typed
:class:`AdmissionRejected` — the caller gets a fast, explicit rejection
it can retry against another replica, instead of an unbounded queue that
turns overload into timeouts for everyone.

The controller never deadlocks under burst: running queries hold no
controller state while executing (the slot is a counter, released in a
``finally``), waiting queries block on a condition variable that every
release notifies, and a full queue rejects instead of waiting.  An
optional ``queue_timeout`` additionally sheds waiters whose queueing
delay exceeds the latency budget — a query that waited longer than its
caller will wait for the answer is pure wasted work.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = ["AdmissionController", "AdmissionRejected"]


class AdmissionRejected(RuntimeError):
    """A query was shed by admission control (typed, retryable).

    Carries enough to make the rejection actionable: which graph, how
    many queries were running and queued against what limits, and
    whether the shed happened at arrival (queue full) or after a queue
    timeout.
    """

    def __init__(self, graph: str, *, running: int, queued: int,
                 max_concurrent: int, max_queue: int,
                 reason: str = "queue full"):
        self.graph = graph
        self.running = running
        self.queued = queued
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.reason = reason
        super().__init__(
            f"query on {graph!r} shed ({reason}): {running} running "
            f"(cap {max_concurrent}), {queued} queued (cap {max_queue}) "
            "— retry later or against another replica")


class AdmissionController:
    """Bounded per-graph admission: cap + queue + shed.

    Use as a context manager around the engine run::

        with controller.admit("social"):
            result = engine.run(...)

    Shared by every query path of one service (synchronous ``play`` and
    pooled ``submit`` alike).  A single controller may also be shared by
    several services to enforce a machine-wide budget — the counters are
    keyed by graph name only.
    """

    def __init__(self, *, max_concurrent: int = 8, max_queue: int = 16,
                 queue_timeout: Optional[float] = None):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._cond = threading.Condition()
        self._running: Dict[str, int] = {}
        self._queued: Dict[str, int] = {}
        #: queries shed (rejected) since construction
        self.sheds = 0
        #: queries admitted since construction
        self.admissions = 0

    # ------------------------------------------------------------------
    def admit(self, graph: str) -> "_AdmissionSlot":
        """Acquire a run slot for one query on ``graph`` (or raise
        :class:`AdmissionRejected`).  Returns a context manager whose
        exit releases the slot."""
        with self._cond:
            if self._running.get(graph, 0) < self.max_concurrent:
                self._running[graph] = self._running.get(graph, 0) + 1
                self.admissions += 1
                return _AdmissionSlot(self, graph)
            if self._queued.get(graph, 0) >= self.max_queue:
                self.sheds += 1
                raise AdmissionRejected(
                    graph, running=self._running.get(graph, 0),
                    queued=self._queued.get(graph, 0),
                    max_concurrent=self.max_concurrent,
                    max_queue=self.max_queue)
            self._queued[graph] = self._queued.get(graph, 0) + 1
            try:
                while self._running.get(graph, 0) >= self.max_concurrent:
                    if not self._cond.wait(timeout=self.queue_timeout):
                        self.sheds += 1
                        raise AdmissionRejected(
                            graph, running=self._running.get(graph, 0),
                            queued=self._queued.get(graph, 0),
                            max_concurrent=self.max_concurrent,
                            max_queue=self.max_queue,
                            reason=f"queued > {self.queue_timeout}s")
            finally:
                self._queued[graph] -= 1
            self._running[graph] = self._running.get(graph, 0) + 1
            self.admissions += 1
            return _AdmissionSlot(self, graph)

    def _release(self, graph: str) -> None:
        with self._cond:
            self._running[graph] -= 1
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def running(self, graph: str) -> int:
        with self._cond:
            return self._running.get(graph, 0)

    def queued(self, graph: str) -> int:
        with self._cond:
            return self._queued.get(graph, 0)

    def __repr__(self) -> str:
        with self._cond:
            running = sum(self._running.values())
            queued = sum(self._queued.values())
        return (f"AdmissionController(cap={self.max_concurrent}/graph, "
                f"queue={self.max_queue}, running={running}, "
                f"queued={queued}, admitted={self.admissions}, "
                f"shed={self.sheds})")


class _AdmissionSlot:
    """A held run slot; releases on exit exactly once."""

    __slots__ = ("_controller", "_graph", "_released")

    def __init__(self, controller: AdmissionController, graph: str):
        self._controller = controller
        self._graph = graph
        self._released = False

    def __enter__(self) -> "_AdmissionSlot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(self._graph)
