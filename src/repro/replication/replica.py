"""ReplicaService: a WAL-tailing read replica of a durable service.

A replica is a :class:`~repro.service.GrapeService` whose state is fed
entirely by the primary's durable chain: it **bootstraps** from the
latest committed snapshot (replaying the WAL prefix the snapshot does
not cover) and then **tails** — every :meth:`~ReplicaService.sync` polls
a :class:`~repro.store.catalog.WALFollower` per graph and applies the
new batches through the exact write path the primary used
(``_apply_batch``: fragmentation maintenance, watcher fan-out), minus
the re-logging.  Standing watches registered on the replica are thus
maintained by *replaying the update*, never by re-running the query —
the bounded-maintenance framing of FO+MOD-under-updates applied to the
serving tier.

Lag is observable (:meth:`lag_bytes`, :meth:`replication_status`) and
bounded by how often the consumer syncs; the applied position is the
``(generation, seq)`` the follower reached plus a monotone per-graph
applied-batch counter.  When the replica falls behind the primary's GC
retention window (:class:`~repro.store.catalog.GenerationGapError`) it
**re-bootstraps** from the current snapshot — graphs are reloaded and
every active watch session is rebuilt against the fresh state, so
handles survive with their identity (and answer) intact.

Writes are refused with a typed :class:`ReadOnlyReplicaError` until the
:class:`~repro.replication.FailoverCoordinator` promotes this replica —
:meth:`promote` drains the followers one final time, opens a *writable*
store handle fenced at the new epoch, and from then on the full
primary write path (updates, WAL appends, compaction) is live.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.core.api import PIERegistry
from repro.core.engine import EngineConfig, GrapeEngine
from repro.core.updates import ContinuousQuerySession
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.obs import events as _events
from repro.replication.admission import AdmissionController
from repro.runtime.executors import ExecutorBackend
from repro.service.facade import GrapeService
from repro.store.catalog import (GenerationGapError, GraphStore,
                                 WALFollower)
from repro.store.snapshot import SnapshotError
from repro.store.wal import WALError

__all__ = ["ReadOnlyReplicaError", "ReplicaService"]


class ReadOnlyReplicaError(RuntimeError):
    """A mutation was attempted on an unpromoted replica.

    Replicas only ever learn about updates by tailing the primary's
    WAL; accepting a local write would fork the history.  Route writes
    to the primary — or promote this replica first.
    """


class ReplicaService(GrapeService):
    """A read-only serving node fed by tailing a primary's WAL chain.

    Parameters mirror :class:`~repro.service.GrapeService` where they
    make sense for a reader; ``store_dir`` is the *primary's* store root
    (shared storage), opened read-only.  ``replica_id`` names this node
    for failover (it becomes the fencing ``node_id`` on promotion).
    """

    def __init__(self, store_dir: Union[str, Path], *,
                 engine: Union[EngineConfig, GrapeEngine, None] = None,
                 backend: Union[str, "ExecutorBackend", None] = None,
                 registry: Optional[PIERegistry] = None,
                 concurrency: int = 4,
                 admission: Optional[AdmissionController] = None,
                 grouping: bool = True,
                 replica_id: str = "replica",
                 store_compact_threshold: Optional[int] = None,
                 store_retain_generations: Optional[int] = None):
        super().__init__(engine=engine, backend=backend, registry=registry,
                         concurrency=concurrency, admission=admission,
                         grouping=grouping, node_id=replica_id)
        self.replica_id = replica_id
        self.store_root = Path(store_dir)
        self._store_compact_threshold = store_compact_threshold
        self._store_retain_generations = store_retain_generations
        self._ro_store = GraphStore(store_dir, read_only=True)
        self._followers: Dict[str, WALFollower] = {}
        #: monotone count of WAL batches applied per graph (the
        #: "applied seq" a consumer watches advance)
        self._applied: Dict[str, int] = {}
        self._promoted = False
        for name in self._ro_store.names():
            self._bootstrap(name)

    # ------------------------------------------------------------------
    # bootstrap / re-bootstrap
    # ------------------------------------------------------------------
    def _bootstrap(self, name: str) -> None:
        """Load ``name`` from the current snapshot + WAL and leave a
        follower positioned exactly after what was loaded.

        Retries around the primary compacting mid-bootstrap: between
        reading the manifest and opening the follower the generation can
        roll over and GC can unlink the files just read — then the state
        we loaded is already superseded, so load again from the fresh
        chain.
        """
        last_exc: Optional[BaseException] = None
        for _attempt in range(8):
            try:
                stored = self._ro_store.load(name)
                follower = self._ro_store.follow(
                    name, from_generation=stored.generation,
                    from_seq=stored.replayed)
            except (GenerationGapError, SnapshotError, WALError,
                    FileNotFoundError) as exc:
                last_exc = exc
                time.sleep(0.01)
                continue
            break
        else:
            raise RuntimeError(
                f"could not bootstrap replica graph {name!r}: the "
                "primary kept compacting past us") from last_exc
        with self._lock:
            self._install_recovered(name, stored)
        old = self._followers.pop(name, None)
        if old is not None:
            old.close()
        self._followers[name] = follower
        self._applied.setdefault(name, 0)

    def _resnapshot(self, name: str) -> None:
        """Fall back to a full re-bootstrap after losing the chain
        (follower beyond the retention window, or a reset WAL).

        Active watch sessions are rebuilt against the freshly loaded
        fragmentation — each :class:`~repro.service.WatchHandle` keeps
        its identity and simply starts answering from the new state.
        """
        self._bootstrap(name)
        _events.emit("replica.resnapshot", graph=name,
                     replica=self.replica_id)
        with self._lock:
            handles = self._active_watches(name)
            self.stats.replica_resnapshots += 1
        if not handles:
            return
        frag = self._fragmentation_for(name, self.engine_config)
        glock = self._graph_lock(name)
        with glock.read():
            for handle in handles:
                old = handle.session
                handle.session = ContinuousQuerySession(
                    self.engine_config.build(), old.program, old.query,
                    fragmentation=frag)
        with self._lock:
            for handle in handles:
                self.stats.observe_run(handle.session.metrics)

    # ------------------------------------------------------------------
    # tailing
    # ------------------------------------------------------------------
    def sync(self, name: Optional[str] = None) -> int:
        """Apply every batch the primary appended since the last sync;
        returns how many were applied (across the given graph, or all).

        Also adopts graphs the primary registered after this replica
        started.  A graph whose chain was lost to retention GC is
        re-bootstrapped (counted in ``stats.replica_resnapshots``)
        rather than failed.

        On a promoted replica this is a no-op returning 0 — the node
        *is* the primary; there is no chain left to tail.
        """
        if self._promoted:
            return 0
        if name is None:
            for fresh in self._ro_store.names():
                if fresh not in self._followers:
                    self._bootstrap(fresh)
            names = list(self._followers)
        else:
            names = [name]
        return sum(self._sync_one(n) for n in names)

    def _sync_one(self, name: str) -> int:
        with self._mutation_lock(name):
            follower = self._followers.get(name)
            if follower is None:
                raise ValueError(f"replica is not following {name!r}")
            generation_before = follower.generation
            try:
                batches = follower.poll()
            except (GenerationGapError, WALError):
                self._resnapshot(name)
                follower = self._followers[name]
                generation_before = follower.generation
                batches = follower.poll()
            applied = 0
            for _seq, norm in batches:
                if not norm:
                    continue
                self._apply_batch(name, norm)
                applied += 1
            rollovers = follower.generation - generation_before
            with self._lock:
                self._applied[name] = self._applied.get(name, 0) + applied
                self.stats.replica_batches_applied += applied
                if rollovers > 0:
                    self.stats.replica_rollovers += rollovers
            if applied or rollovers:
                _events.emit("replica.sync", graph=name,
                             replica=self.replica_id, batches=applied,
                             rollovers=rollovers,
                             lag_bytes=follower.lag_bytes())
            return applied

    # ------------------------------------------------------------------
    # lag / position introspection
    # ------------------------------------------------------------------
    def position(self, name: str) -> Tuple[int, int]:
        """The follower's ``(generation, seq)`` replication position."""
        return self._require_follower(name).position

    def applied_seq(self, name: str) -> int:
        """Monotone count of WAL batches applied to ``name`` by
        syncing (excludes the batches folded in at bootstrap)."""
        with self._lock:
            return self._applied.get(name, 0)

    def lag_bytes(self, name: str) -> int:
        """Unapplied WAL bytes between this replica and the primary."""
        return self._require_follower(name).lag_bytes()

    def caught_up(self, name: str) -> bool:
        return self._require_follower(name).caught_up

    def replication_status(self, name: str) -> Dict[str, Any]:
        """One graph's replication state, as a plain dict (for
        monitoring endpoints and tests alike)."""
        follower = self._require_follower(name)
        generation, seq = follower.position
        return {
            "graph": name,
            "replica_id": self.replica_id,
            "generation": generation,
            "seq": seq,
            "applied_batches": self.applied_seq(name),
            "lag_bytes": follower.lag_bytes(),
            "caught_up": follower.caught_up,
            "promoted": self._promoted,
        }

    def _require_follower(self, name: str) -> WALFollower:
        follower = self._followers.get(name)
        if follower is None:
            raise ValueError(f"replica is not following {name!r}")
        return follower

    @property
    def promoted(self) -> bool:
        return self._promoted

    def position_vector(self) -> Tuple[Tuple[str, int, int], ...]:
        """Every followed graph's ``(name, generation, seq)``, sorted —
        the totally ordered progress vector failover compares."""
        return tuple(sorted((name, *follower.position)
                            for name, follower in self._followers.items()))

    # ------------------------------------------------------------------
    # write protection / promotion
    # ------------------------------------------------------------------
    def _require_primary(self, what: str) -> None:
        if not self._promoted:
            raise ReadOnlyReplicaError(
                f"{what} refused: {self.replica_id!r} is a read replica; "
                "writes go to the primary (or promote this replica)")

    def update(self, graph: str, delta: GraphDelta):
        self._require_primary(f"update of {graph!r}")
        return super().update(graph, delta)

    def load_graph(self, name: str, graph: Graph, *,
                   replace: bool = False) -> None:
        self._require_primary(f"load_graph({name!r})")
        super().load_graph(name, graph, replace=replace)

    def unload_graph(self, name: str) -> Graph:
        self._require_primary(f"unload_graph({name!r})")
        return super().unload_graph(name)

    def promote(self, *, epoch: Optional[int] = None) -> None:
        """Become the primary: final-drain the WAL chain, then attach a
        writable store handle fenced at the (already published) epoch.

        Called by the :class:`~repro.replication.FailoverCoordinator`
        *after* it bumped the ``EPOCH`` file and elected this replica —
        opening the writable handle validates the published leader is
        us and arms the fence, so a concurrently deposed primary's
        appends fail while ours pass.
        """
        if self._promoted:
            return
        self.sync()  # final drain: everything durable must be applied
        for follower in self._followers.values():
            follower.close()
        self._followers = {}
        self._ro_store.close()
        kwargs: Dict[str, Any] = {"node_id": self.replica_id}
        if self._store_compact_threshold is not None:
            kwargs["compact_threshold_bytes"] = self._store_compact_threshold
        if self._store_retain_generations is not None:
            kwargs["retain_generations"] = self._store_retain_generations
        store = GraphStore(self.store_root, **kwargs)
        if epoch is not None:
            store.arm_fence(epoch)
        with self._lock:
            self.store = store
            self._promoted = True
            self._sync_store_stats()

    # ------------------------------------------------------------------
    def close(self, *, flush: bool = True) -> None:
        for follower in self._followers.values():
            follower.close()
        self._followers = {}
        self._ro_store.close()
        # An unpromoted replica has self.store is None, so the base
        # close never writes; a promoted one checkpoints like any
        # primary.
        super().close(flush=flush)

    def __repr__(self) -> str:
        role = "primary(promoted)" if self._promoted else "replica"
        return (f"ReplicaService({self.replica_id!r}, {role}, "
                f"following={sorted(self._followers)}, "
                f"applied={dict(self._applied)})")
