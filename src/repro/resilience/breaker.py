"""Backend circuit breaker: degrade process → thread → serial.

The process backend is the fast path for heavy graphs, but it has the
most infrastructure to go wrong: worker processes can be OOM-killed,
crash in native code, or be reaped by an operator.  Retrying rides out
one death; a *pattern* of deaths means the pool itself is unhealthy for
that workload, and burning a full retry budget per query turns every
request into worst-case latency.

The breaker watches consecutive infrastructure failures per graph.  At
``failure_threshold`` it **opens**: queries on that graph transparently
run one step down the degradation chain (``process → thread →
serial``), trading peak throughput for certainty — the inline backends
share no failure domain with the pool.  After ``cooldown_s`` the next
query is a **probe** on the configured backend: success restores it,
failure re-opens the breaker (fresh cooldown).  Repeated failures while
degraded step further down the chain.

Everything is observable: ``transitions`` records every degrade /
probe / restore with a monotonic timestamp, and the service mirrors the
counts into :class:`~repro.runtime.metrics.ServiceMetrics`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import events as _events

__all__ = ["BackendCircuitBreaker", "DEGRADATION_CHAIN"]

#: default degradation order, fastest/most-fragile first
DEGRADATION_CHAIN: Tuple[str, ...] = ("process", "thread", "serial")


@dataclass
class _GraphState:
    failures: int = 0          # consecutive failures at the current level
    degraded_to: Optional[str] = None
    opened_at: float = 0.0
    probing: bool = False


@dataclass
class BackendCircuitBreaker:
    """Per-graph backend health tracking with a degradation chain.

    ``on_transition(kind, graph, from_backend, to_backend)`` is invoked
    (outside the breaker lock) for kinds ``"degrade"``, ``"probe"`` and
    ``"restore"`` — the service wires it to its metrics.
    """

    failure_threshold: int = 3
    cooldown_s: float = 30.0
    chain: Tuple[str, ...] = DEGRADATION_CHAIN
    clock: Callable[[], float] = time.monotonic
    on_transition: Optional[Callable[[str, str, str, str], None]] = None
    #: every transition: ``(kind, graph, from, to, at)``
    transitions: List[Tuple[str, str, str, str, float]] = field(
        default_factory=list)
    _states: Dict[str, _GraphState] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    # ------------------------------------------------------------------
    def resolve(self, graph: str, configured: str) -> str:
        """The backend a query on ``graph`` should actually use.

        Healthy → the configured backend.  Open → the degraded level.
        Open past the cooldown → the configured backend again, as a
        half-open probe (one query; its outcome decides).
        """
        event = None
        result = configured
        with self._lock:
            state = self._states.get(graph)
            if (state is not None and state.degraded_to is not None
                    and configured in self.chain):
                if (not state.probing and
                        self.clock() - state.opened_at >= self.cooldown_s):
                    state.probing = True
                    event = ("probe", graph, state.degraded_to, configured)
                    self._record(event)
                result = configured if state.probing else state.degraded_to
        self._emit(event)
        return result

    def record_success(self, graph: str, used: str) -> None:
        """A query completed on ``used``; closes the breaker when that
        was a successful probe of the configured backend."""
        event = None
        with self._lock:
            state = self._states.get(graph)
            if state is None:
                return
            state.failures = 0
            if state.probing and used != state.degraded_to:
                event = ("restore", graph, state.degraded_to, used)
                state.degraded_to = None
                state.probing = False
                self._record(event)
        self._emit(event)

    def record_failure(self, graph: str, used: str) -> None:
        """An infrastructure failure on ``used``; trips or deepens the
        breaker once the consecutive-failure threshold is reached."""
        if used not in self.chain:
            return
        event = None
        with self._lock:
            state = self._states.setdefault(graph, _GraphState())
            now = self.clock()
            if state.probing:
                # the probe failed: re-open at the previous level
                state.probing = False
                state.opened_at = now
                state.failures = 0
                event = ("degrade", graph, used, state.degraded_to)
                self._record(event)
            else:
                state.failures += 1
                if state.failures >= self.failure_threshold:
                    nxt = self._next_level(used)
                    if nxt is not None:
                        state.degraded_to = nxt
                        state.opened_at = now
                        state.failures = 0
                        event = ("degrade", graph, used, nxt)
                        self._record(event)
        self._emit(event)

    # ------------------------------------------------------------------
    def degraded_backend(self, graph: str) -> Optional[str]:
        """The degraded level for ``graph`` (``None`` when healthy)."""
        with self._lock:
            state = self._states.get(graph)
            return state.degraded_to if state else None

    def _next_level(self, used: str) -> Optional[str]:
        try:
            index = self.chain.index(used)
        except ValueError:
            return None
        return self.chain[index + 1] if index + 1 < len(self.chain) else None

    def _record(self, event) -> None:
        kind, graph, src, dst = event
        self.transitions.append((kind, graph, src, dst, self.clock()))

    def _emit(self, event) -> None:
        if event is None:
            return
        kind, graph, src, dst = event
        # kinds are "degrade"/"probe"/"restore" → backend.degraded etc.
        _events.emit(f"backend.{kind}", graph=graph, src=src, dst=dst)
        if self.on_transition is not None:
            self.on_transition(*event)

    def __repr__(self) -> str:
        with self._lock:
            degraded = {g: s.degraded_to for g, s in self._states.items()
                        if s.degraded_to}
        return (f"BackendCircuitBreaker(threshold={self.failure_threshold},"
                f" cooldown={self.cooldown_s}s, degraded={degraded})")
