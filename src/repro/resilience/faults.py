"""FaultPlane: one deterministic, seeded fault-injection registry.

Before this module, every fault path was exercised by a bespoke one-off
— a ``kill -9`` in the kill-recovery test, a hand-truncated file in the
WAL tests, a monkeypatched ``poll`` in the replication suite.  The fault
plane replaces that with a single registry the production code itself
consults at its **injection sites**:

========================  ====================================  =========
site                      where it is checked                   kinds
========================  ====================================  =========
``exec.step``             engine, once per fragment+superstep   ``crash``
                          (embedded into the StepCommand)       ``hang``
                                                                ``slow``
``exec.shm.attach``       :meth:`~repro.runtime.executors.      ``error``
                          ProcessBackend.open`, once per worker
                          lease shipping segment descriptors
                          (workers degrade to pickle shipping)
``store.wal.append``      :meth:`~repro.store.wal.DeltaWAL.     ``torn``
                          append`                               ``fsync``
``store.snapshot.write``  :func:`~repro.store.snapshot.         ``torn``
                          save_snapshot`
``replication.tail``      :meth:`~repro.store.wal.WALTailer.    ``stall``
                          poll`
``replication.promote``   :meth:`~repro.replication.failover.   ``crash``
                          FailoverCoordinator.promote`          ``delay``
========================  ====================================  =========

Checks are **ordinal**: every ``check(site, key)`` call advances a
deterministic per-``(site, key)`` counter, and a planned fault fires
when its ordinal window is reached — the same schedule every run, which
is what lets the chaos harness assert bitwise equality against a
fault-free oracle.  Randomized schedules (:meth:`FaultPlane.rate`) draw
from per-spec ``random.Random`` streams derived from the plane seed, so
they too are reproducible.  Every fault fires a bounded number of times
(``times`` per spec, ``max_fires`` per plane), mirroring
:class:`~repro.runtime.fault.FailureInjector`'s "each failure fires
exactly once" discipline — retries and recovery always drain the
schedule instead of livelocking.

Production code calls the module-level :func:`check`, a fast no-op while
no plane is installed (one attribute read), so the fault-free path pays
nothing.  Tests install a plane for a scope with::

    with faults.installed(FaultPlane(seed=7)) as plane:
        plane.plan("exec.step", "crash", key=1, at=2)
        ...

The engine additionally accepts a plane directly
(``EngineConfig(fault_plane=...)``) for single-run injection without the
process-global install.
"""

from __future__ import annotations

import random
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

__all__ = ["FaultAction", "FaultPlane", "active", "check", "install",
           "installed", "uninstall"]


@dataclass
class FaultAction:
    """What an injection site should do, as data.

    Picklable on purpose: the engine embeds step actions into
    :class:`~repro.runtime.executors.StepCommand`, which crosses the
    pipe to process-backend workers.
    """

    site: str
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)


@dataclass
class _FaultSpec:
    site: str
    kind: str
    key: Optional[Hashable]  # None matches any key (site-wide ordinals)
    at: int                  # first ordinal (1-based) the fault fires on
    times: int               # how many consecutive ordinals fire
    rate: float              # >0: probabilistic instead of ordinal
    params: Dict[str, Any]
    rng: Optional[random.Random] = None
    fires: int = 0


def _spec_seed(seed: int, site: str, kind: str, index: int) -> int:
    """A stable per-spec stream seed (independent of dict order)."""
    return zlib.crc32(f"{seed}:{site}:{kind}:{index}".encode()) & 0xFFFFFFFF


class FaultPlane:
    """A seeded, deterministic schedule of faults across the stack.

    Parameters
    ----------
    seed:
        Master seed deriving every probabilistic spec's random stream.
    max_fires:
        Plane-wide cap on total fired faults — a backstop so even a
        carelessly high ``rate`` schedule always drains.
    """

    def __init__(self, seed: int = 0, *, max_fires: int = 64):
        self.seed = seed
        self.max_fires = max_fires
        self._specs: Dict[str, List[_FaultSpec]] = {}
        self._ordinals: Dict[Tuple[str, Optional[Hashable]], int] = {}
        self._lock = threading.Lock()
        #: every fired fault: ``(site, key, ordinal, kind)`` in order
        self.fired: List[Tuple[str, Optional[Hashable], int, str]] = []

    # ------------------------------------------------------------------
    # schedule construction
    # ------------------------------------------------------------------
    def plan(self, site: str, kind: str, *, at: int = 1,
             key: Optional[Hashable] = None, times: int = 1,
             **params: Any) -> "FaultPlane":
        """Schedule a fault at the ``at``-th check of ``site`` (1-based;
        per-``key`` ordinals when ``key`` is given, site-wide
        otherwise), firing on ``times`` consecutive ordinals.  Returns
        the plane for chaining."""
        if at < 1 or times < 1:
            raise ValueError("at and times are 1-based and positive")
        spec = _FaultSpec(site=site, kind=kind, key=key, at=at,
                          times=times, rate=0.0, params=dict(params))
        with self._lock:
            self._specs.setdefault(site, []).append(spec)
        return self

    def rate(self, site: str, kind: str, rate: float, *,
             key: Optional[Hashable] = None, times: int = 4,
             **params: Any) -> "FaultPlane":
        """Schedule a probabilistic fault: each check of ``site`` fires
        with probability ``rate`` from a stream derived from the plane
        seed (same seed → same schedule), at most ``times`` total."""
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        spec = _FaultSpec(site=site, kind=kind, key=key, at=1,
                          times=times, rate=rate, params=dict(params))
        with self._lock:
            index = len(self._specs.get(site, []))
            spec.rng = random.Random(
                _spec_seed(self.seed, site, kind, index))
            self._specs.setdefault(site, []).append(spec)
        return self

    # ------------------------------------------------------------------
    # consultation (called by the injection sites)
    # ------------------------------------------------------------------
    def check(self, site: str, key: Optional[Hashable] = None
              ) -> Optional[FaultAction]:
        """Advance the ``(site, key)`` ordinal; return the action to
        perform, or ``None``.  At most one spec fires per check (first
        scheduled wins)."""
        with self._lock:
            site_ord = self._ordinals[(site, None)] = \
                self._ordinals.get((site, None), 0) + 1
            key_ord = site_ord
            if key is not None:
                key_ord = self._ordinals[(site, key)] = \
                    self._ordinals.get((site, key), 0) + 1
            if len(self.fired) >= self.max_fires:
                return None
            for spec in self._specs.get(site, ()):
                if spec.fires >= spec.times:
                    continue
                if spec.key is not None and spec.key != key:
                    continue
                ordinal = key_ord if spec.key is not None else site_ord
                if spec.rate > 0.0:
                    if spec.rng.random() >= spec.rate:
                        continue
                elif not spec.at <= ordinal < spec.at + spec.times:
                    continue
                spec.fires += 1
                self.fired.append((site, key, ordinal, spec.kind))
                return FaultAction(site=site, kind=spec.kind,
                                   params=dict(spec.params))
            return None

    def may_fire(self, prefix: str) -> bool:
        """Whether any spec under sites starting with ``prefix`` could
        still fire — the engine uses this to decide whether checkpoint
        fault tolerance must be enabled for a run."""
        with self._lock:
            if len(self.fired) >= self.max_fires:
                return False
            return any(spec.fires < spec.times
                       for site, specs in self._specs.items()
                       if site.startswith(prefix)
                       for spec in specs)

    def drained(self) -> bool:
        """True once every planned fault has fired (rate specs count as
        drained when their ``times`` budget is spent)."""
        with self._lock:
            return all(spec.fires >= spec.times or spec.rate > 0.0
                       for specs in self._specs.values()
                       for spec in specs)

    def __repr__(self) -> str:
        with self._lock:
            n = sum(len(s) for s in self._specs.values())
            return (f"FaultPlane(seed={self.seed}, specs={n}, "
                    f"fired={len(self.fired)})")


# ---------------------------------------------------------------------------
# process-global installation (what the store/replication sites consult)
# ---------------------------------------------------------------------------
_active: Optional[FaultPlane] = None
_install_lock = threading.Lock()


def install(plane: FaultPlane) -> FaultPlane:
    """Make ``plane`` the process-global fault plane (one at a time)."""
    global _active
    with _install_lock:
        if _active is not None:
            raise RuntimeError("a FaultPlane is already installed")
        _active = plane
    return plane


def uninstall() -> None:
    """Remove the installed plane (idempotent)."""
    global _active
    with _install_lock:
        _active = None


def active() -> Optional[FaultPlane]:
    """The installed plane, if any."""
    return _active


@contextmanager
def installed(plane: FaultPlane):
    """Install ``plane`` for a scope: the chaos harness's entry point."""
    install(plane)
    try:
        yield plane
    finally:
        uninstall()


def check(site: str, key: Optional[Hashable] = None
          ) -> Optional[FaultAction]:
    """Consult the installed plane; a fast no-op when none is."""
    plane = _active
    if plane is None:
        return None
    return plane.check(site, key)
