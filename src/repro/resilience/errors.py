"""The typed error taxonomy of the resilience plane.

Every failure the serving stack can surface under faults is one of a
small set of documented exception types — a caller never sees a hang, a
bare ``Exception`` or a silently wrong answer:

* :exc:`DeadlineExceeded` — the query's time budget ran out (or a hung
  worker could not be replaced in time).  Subclasses ``TimeoutError``.
* :exc:`RetryExhausted` — a retryable fault (worker death, WAL write
  failure) recurred past the retry policy's attempt budget; the last
  underlying error is chained and carried.
* :exc:`QueryCancelled` — the caller cancelled the ticket
  (:meth:`~repro.service.tickets.QueryTicket.cancel`); the engine run
  was abandoned at a superstep boundary and its resources released.
* :exc:`FailoverInterrupted` — an injected (or simulated) coordinator
  crash mid-failover; the fence holds, so re-running the failover is
  always safe.

Shedding (:class:`~repro.replication.admission.AdmissionRejected`) and
store-level errors (``WALWriteError``, ``SnapshotError``) complete the
taxonomy; they live with the subsystems that raise them.

This module is import-leaf on purpose: the executor, engine, store and
service layers all raise these types, so nothing here may import any of
them.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["DeadlineExceeded", "FailoverInterrupted", "QueryCancelled",
           "RetryExhausted"]


class DeadlineExceeded(TimeoutError):
    """A query exceeded its time budget (``deadline_s``) or a hung
    worker exhausted its heartbeat grace without a recovery path.

    ``budget_s``/``elapsed_s`` are filled in where known (the engine's
    superstep boundary knows both; a pipe-recv timeout knows only that
    the absolute deadline passed).
    """

    def __init__(self, message: str, *, budget_s: Optional[float] = None,
                 elapsed_s: Optional[float] = None):
        super().__init__(message)
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s


class RetryExhausted(RuntimeError):
    """A retryable failure persisted past the policy's attempt budget.

    ``attempts`` counts every try (initial + retries); ``last_error`` is
    the final underlying failure (also chained as ``__cause__``).
    """

    def __init__(self, message: str, *, attempts: int,
                 last_error: Optional[BaseException] = None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class QueryCancelled(RuntimeError):
    """The ticket owning this run was cancelled; the run was abandoned
    cleanly (no partial answer is ever published)."""


class FailoverInterrupted(RuntimeError):
    """The failover coordinator died mid-protocol (injected).  The
    epoch fence it wrote first still holds, so retrying the failover is
    safe and loses nothing."""
