"""Bounded retry with seeded exponential backoff.

The policy decides *what* is worth retrying (transient infrastructure
faults — a pooled worker death, a failed WAL append whose log was
truncated back to its last durable record) and *how long* to wait
between attempts.  Deterministic on purpose: jitter draws from a seeded
stream so a replayed schedule backs off identically.

Never retried: :exc:`~repro.resilience.errors.DeadlineExceeded` (the
budget is spent), :exc:`~repro.resilience.errors.QueryCancelled` (the
caller asked us to stop), shedding, and anything that looks like a
*logic* error — retrying those would only repeat them.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type

from repro.resilience.errors import (DeadlineExceeded, QueryCancelled,
                                     RetryExhausted)

__all__ = ["RetryPolicy", "run_with_retry"]


def _default_retryable() -> Tuple[Type[BaseException], ...]:
    # Imported lazily: executors/wal import must not be forced on
    # policy construction in contexts that never touch them.
    from repro.runtime.executors import WorkerProcessDied
    from repro.store.wal import WALWriteError
    return (WorkerProcessDied, WALWriteError)


@dataclass
class RetryPolicy:
    """How many times to retry and how long to back off.

    ``max_attempts`` counts every try (so ``1`` disables retries);
    backoff for retry ``k`` (0-based) is
    ``min(base * multiplier**k, max_backoff) * (1 ± jitter)`` with the
    jitter factor drawn from a stream seeded by ``seed``.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.02
    multiplier: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.1
    seed: int = 0
    #: extra exception types to treat as retryable (on top of worker
    #: deaths and WAL write failures)
    extra_retryable: Tuple[Type[BaseException], ...] = ()
    _rng: random.Random = field(init=False, repr=False, compare=False,
                                default=None)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._rng = random.Random(self.seed)

    def is_retryable(self, exc: BaseException) -> bool:
        if isinstance(exc, (DeadlineExceeded, QueryCancelled)):
            return False
        return isinstance(exc, _default_retryable() + self.extra_retryable)

    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (0-based: the wait after the
        first failure is ``backoff_s(0)``)."""
        base = min(self.base_backoff_s * (self.multiplier ** attempt),
                   self.max_backoff_s)
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(0.0, base)


def run_with_retry(fn: Callable[[], "object"], policy: RetryPolicy, *,
                   on_retry: Optional[Callable[[int, BaseException],
                                               None]] = None,
                   sleep: Callable[[float], None] = time.sleep):
    """Call ``fn`` under ``policy``.

    Non-retryable errors propagate unchanged; a retryable error that
    survives every attempt is wrapped in
    :exc:`~repro.resilience.errors.RetryExhausted` (the last error
    chained).  ``on_retry(attempt_index, exc)`` fires before each
    backoff sleep — the service uses it to count retries and feed the
    circuit breaker.
    """
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except BaseException as exc:
            if not policy.is_retryable(exc):
                raise
            last = exc
            if attempt + 1 >= policy.max_attempts:
                break
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.backoff_s(attempt))
    raise RetryExhausted(
        f"still failing after {policy.max_attempts} attempts: {last}",
        attempts=policy.max_attempts, last_error=last) from last
