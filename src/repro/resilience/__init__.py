"""repro.resilience: the production half of fault tolerance.

The paper's Section 6 gives the *recovery* machinery (arbitrator
checkpoints, task transfer, WAL replay — PR 5/6); this package adds the
serving-side discipline around it — detect, bound, retry, degrade:

* :mod:`~repro.resilience.faults` — the :class:`FaultPlane`, one
  deterministic seeded injection registry consulted by the executor,
  store and replication layers;
* :mod:`~repro.resilience.errors` — the typed error taxonomy
  (:exc:`DeadlineExceeded`, :exc:`RetryExhausted`,
  :exc:`QueryCancelled`, :exc:`FailoverInterrupted`);
* :mod:`~repro.resilience.retry` — bounded seeded-backoff retry of
  transient infrastructure faults;
* :mod:`~repro.resilience.breaker` — the per-graph circuit breaker
  degrading ``process → thread → serial`` after repeated pool failures.

See the README's "Resilience" section for how the knobs compose on
:class:`~repro.service.GrapeService`.
"""

from repro.resilience.breaker import (DEGRADATION_CHAIN,
                                      BackendCircuitBreaker)
from repro.resilience.errors import (DeadlineExceeded, FailoverInterrupted,
                                     QueryCancelled, RetryExhausted)
from repro.resilience.faults import FaultAction, FaultPlane
from repro.resilience.retry import RetryPolicy, run_with_retry

__all__ = [
    "BackendCircuitBreaker",
    "DEGRADATION_CHAIN",
    "DeadlineExceeded",
    "FailoverInterrupted",
    "FaultAction",
    "FaultPlane",
    "QueryCancelled",
    "RetryExhausted",
    "RetryPolicy",
    "run_with_retry",
]
