"""repro — a Python reproduction of GRAPE (Fan et al., SIGMOD 2017).

GRAPE parallelizes *whole sequential graph algorithms*: plug a batch
algorithm (``PEval``), an incremental algorithm (``IncEval``) and a
combiner (``Assemble``) into the engine, and it runs a simultaneous
fixpoint across graph fragments with correctness guaranteed under a
monotonic condition.

Quickstart (the serving facade)::

    from repro import Graph, GrapeService

    g = Graph(directed=True)
    g.add_edge("a", "b", weight=2.0)
    g.add_edge("b", "c", weight=1.0)

    service = GrapeService()
    service.load_graph("demo", g)
    ticket = service.play("sssp", query="a", graph="demo")
    print(ticket.answer)            # {"a": 0.0, "b": 2.0, "c": 3.0}
    print(ticket.metrics)           # supersteps / time / communication

Advanced (one engine run, no service)::

    from repro import GrapeEngine
    from repro.pie_programs import SSSPProgram

    result = GrapeEngine(num_workers=4).run(SSSPProgram(), query="a",
                                            graph=g)
"""

from repro.core.api import PIERegistry, default_registry
from repro.core.engine import EngineConfig, GrapeEngine, GrapeResult
from repro.core.pie import PIEProgram
from repro.core.updates import ContinuousQuerySession, NonMonotoneUpdateError
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.partition.base import Fragmentation
from repro.partition.strategies import get_strategy
from repro.runtime.metrics import CostModel, RunMetrics, ServiceMetrics
from repro.service import (GrapeService, QueryRequest, QueryTicket,
                           WatchHandle)
from repro.store import GraphStore

__version__ = "1.2.0"

__all__ = [
    "Graph", "GraphDelta", "GrapeEngine", "GrapeResult", "EngineConfig",
    "PIEProgram", "PIERegistry", "Fragmentation", "get_strategy",
    "CostModel", "RunMetrics", "ServiceMetrics", "default_registry",
    "ContinuousQuerySession", "NonMonotoneUpdateError", "GrapeService",
    "GraphStore", "QueryRequest", "QueryTicket", "WatchHandle",
    "__version__",
]
