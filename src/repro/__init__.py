"""repro — a Python reproduction of GRAPE (Fan et al., SIGMOD 2017).

GRAPE parallelizes *whole sequential graph algorithms*: plug a batch
algorithm (``PEval``), an incremental algorithm (``IncEval``) and a
combiner (``Assemble``) into the engine, and it runs a simultaneous
fixpoint across graph fragments with correctness guaranteed under a
monotonic condition.

Quickstart::

    from repro import Graph, GrapeEngine
    from repro.pie_programs import SSSPProgram

    g = Graph(directed=True)
    g.add_edge("a", "b", weight=2.0)
    g.add_edge("b", "c", weight=1.0)

    engine = GrapeEngine(num_workers=4)
    result = engine.run(SSSPProgram(), query="a", graph=g)
    print(result.answer)            # {"a": 0.0, "b": 2.0, "c": 3.0}
    print(result.metrics)           # supersteps / time / communication
"""

from repro.core.api import default_registry
from repro.core.engine import GrapeEngine, GrapeResult
from repro.core.pie import PIEProgram
from repro.graph.graph import Graph
from repro.partition.base import Fragmentation
from repro.partition.strategies import get_strategy
from repro.runtime.metrics import CostModel, RunMetrics

__version__ = "1.0.0"

__all__ = [
    "Graph", "GrapeEngine", "GrapeResult", "PIEProgram", "Fragmentation",
    "get_strategy", "CostModel", "RunMetrics", "default_registry",
    "__version__",
]
