"""Fragments, fragmentations and the partition-strategy interface.

Paper, Section 2: a strategy ``P`` partitions ``G`` into fragments
``F = (F_1, ..., F_m)``; each ``F_i`` is a subgraph of ``G`` residing at
worker ``P_i``; the union of fragments covers every node and edge.

For an **edge-cut** partition each node has a unique *owner* fragment.  A
fragment stores its owned nodes plus read-only *copies* of the out-border
nodes it has edges into:

* ``F_i.I`` — owned nodes with an incoming edge from another fragment
  (paper: "nodes v in V_i such that there is an edge (v', v) incoming from a
  node v' in F_j, i != j");
* ``F_i.O`` — non-owned nodes that some owned node has an edge to.

For a **vertex-cut** partition edges are assigned to fragments and nodes are
replicated wherever they have incident edges; every replicated node is a
border node (entry/exit vertices in the paper's terminology).

The :class:`FragmentationGraph` (``G_P``) indexes, for every border node,
which fragments hold it — GRAPE uses it to deduce message destinations.
"""

from __future__ import annotations

import abc
import itertools
import threading
from typing import (Dict, FrozenSet, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from repro.graph.graph import Graph, Node

__all__ = [
    "Fragment",
    "FragmentationGraph",
    "Fragmentation",
    "PartitionStrategy",
    "build_edge_cut_fragments",
    "build_vertex_cut_fragments",
    "cut_edges",
    "replication_factor",
]


class Fragment:
    """One fragment ``F_i`` of a partitioned graph.

    Attributes
    ----------
    fid:
        Fragment index ``i`` in ``[0, m)``.
    graph:
        The local subgraph: owned nodes, their out-edges, and copies of
        out-border endpoint nodes (edge-cut); or the assigned edges with
        replicated endpoints (vertex-cut).
    owned:
        Nodes this fragment is the primary owner of.
    inner:
        ``F_i.I`` — owned border nodes reachable from other fragments.
    outer:
        ``F_i.O`` — copied nodes owned elsewhere.
    """

    __slots__ = ("fid", "graph", "owned", "inner", "outer",
                 "_csr", "_csr_lock", "_csr_shared", "_remote_csr_live",
                 "csr_epoch", "csr_builds", "csr_invalidations")

    def __init__(self, fid: int, graph: Graph, owned: Set[Node],
                 inner: Set[Node], outer: Set[Node]):
        self.fid = fid
        self.graph = graph
        self.owned = owned
        self.inner = inner
        self.outer = outer
        self._csr = None
        # GrapeService runs concurrent queries over one shared cached
        # fragmentation (they hold only the graph's read lock), so the
        # lazy build must be guarded against duplicate construction.
        self._csr_lock = threading.Lock()
        #: the installed snapshot's arrays live in a shared-memory
        #: segment (repro.runtime.shm) rather than private heap memory
        self._csr_shared = False
        #: a worker-side copy of this fragment holds a live snapshot
        #: (process backend); used only for invalidation accounting
        self._remote_csr_live = False
        #: bumped on every invalidation so consumers holding arrays keyed
        #: by the old snapshot's dense ids know to rebuild them
        self.csr_epoch = 0
        self.csr_builds = 0
        self.csr_invalidations = 0

    def __getstate__(self):
        """Pickle contract (the process backend ships fragments once).

        The cached CSR snapshot and its lock never cross the pipe: the
        snapshot is bulk numpy data cheaply rebuilt from the dict graph,
        and locks are unpicklable by design.  The receiving side starts
        at epoch 0 with a fresh lock and rebuilds its snapshot lazily —
        consumers key their derived arrays on *their* fragment's epoch,
        so the reset is invisible.
        """
        return {slot: getattr(self, slot) for slot in
                ("fid", "graph", "owned", "inner", "outer")}

    def __setstate__(self, state):
        self.__init__(state["fid"], state["graph"], state["owned"],
                      state["inner"], state["outer"])

    def csr(self):
        """Frozen CSR snapshot of the local graph, built lazily.

        The snapshot is cached until :meth:`invalidate_csr` drops it
        (structural mutation through
        :func:`repro.core.updates.apply_delta`); CSR-capable PIE
        programs call this every round and almost always hit the cache.
        Thread-safe: concurrent readers build the snapshot exactly once.
        """
        snap = self._csr
        if snap is None:
            from repro.graph.csr import CSRGraph
            with self._csr_lock:
                snap = self._csr
                if snap is None:
                    snap = CSRGraph.from_graph(self.graph)
                    self._csr = snap
                    self.csr_builds += 1
        return snap

    def install_csr(self, snap, *, shared: bool = False) -> None:
        """Adopt a prebuilt CSR snapshot without counting a build.

        Two callers: warm start (the snapshot loader rebuilds the arrays
        while decoding, so the first query should not pay
        ``from_graph`` again) and the shared-memory fragment plane
        (``shared=True`` — the snapshot's arrays are views over a mapped
        segment, patched in place by weight-only deltas)."""
        with self._csr_lock:
            self._csr = snap
            self._csr_shared = shared

    def touch_csr_epoch(self) -> None:
        """Advance the epoch while keeping the snapshot: its mapped
        arrays were patched in place, so derived arrays keyed on the
        old epoch must refresh but the snapshot itself stays valid."""
        with self._csr_lock:
            self.csr_epoch += 1

    def keep_patched_csr(self, snap) -> bool:
        """After a weight-only delta the arena patched ``snap`` (the
        shared snapshot) in place: keep it and advance the epoch if it
        is still the installed shared snapshot, else fall back to a
        normal invalidation.  Returns whether the snapshot was kept."""
        with self._csr_lock:
            if self._csr_shared and self._csr is snap:
                self.csr_epoch += 1
                return True
        self.invalidate_csr()
        return False

    @property
    def csr_shared(self) -> bool:
        """Whether the cached snapshot maps a shared-memory segment."""
        return self._csr_shared and self._csr is not None

    @property
    def csr_cached(self) -> bool:
        """Whether a current CSR snapshot is already built.

        The bounded maintenance paths use this to pick their
        representation: with a live snapshot the vectorized kernels are
        free, but after a mutation has dropped it, rebuilding the whole
        snapshot to process a small affected region would charge
        ``O(|G|)`` work to an ``O(|AFF|)`` operation — the dict
        algorithms serve the region instead and the next full scan
        (which amortizes it) pays the rebuild.
        """
        return self._csr is not None

    def invalidate_csr(self) -> None:
        """Drop the cached snapshot after a mutation of ``graph``.

        ``csr_epoch`` advances on *every* call: it marks graph mutations,
        not cache drops, because consumers' epoch-keyed arrays can be
        derived from a snapshot built in another process (the process
        backend builds CSR worker-side, so the coordinator-side fragment
        may have nothing cached locally when the mutation lands).
        ``csr_invalidations`` still counts only actual drops — including
        the drop of a worker-side snapshot (the mutation bumps the
        fragmentation's cache token, so worker copies are re-shipped and
        their snapshots discarded with them).
        """
        with self._csr_lock:
            self.csr_epoch += 1
            if self._csr is not None or self._remote_csr_live:
                self._csr = None
                self._csr_shared = False
                self._remote_csr_live = False
                self.csr_invalidations += 1

    def count_remote_csr_builds(self, builds: int) -> None:
        """Fold snapshot builds performed on a worker-side copy of this
        fragment (process backend) into the local lifetime counter, so
        service-level CSR metrics see them."""
        if builds:
            with self._csr_lock:
                self.csr_builds += builds
                self._remote_csr_live = True

    @property
    def border_nodes(self) -> Set[Node]:
        """``F_i.I ∪ F_i.O`` (paper Section 2)."""
        return self.inner | self.outer

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def __repr__(self) -> str:
        return (f"Fragment(fid={self.fid}, owned={len(self.owned)}, "
                f"inner={len(self.inner)}, outer={len(self.outer)})")


class FragmentationGraph:
    """The index ``G_P``: which fragments hold each border node.

    For a border node ``v``, ``G_P(v)`` retrieves the pairs ``i -> j`` with
    ``v ∈ F_i.O`` and ``v ∈ F_j.I``.  We store the equivalent primitive
    facts and derive the pairs:

    * ``owner[v]`` — the owning fragment (edge-cut) or master (vertex-cut);
    * ``holders[v]`` — every fragment whose local graph contains ``v``.
    """

    def __init__(self, owner: Mapping[Node, int],
                 holders: Mapping[Node, FrozenSet[int]]):
        self._owner = dict(owner)
        self._holders = {v: frozenset(fs) for v, fs in holders.items()}

    def owner(self, v: Node) -> int:
        return self._owner[v]

    def holders(self, v: Node) -> FrozenSet[int]:
        """All fragments whose local graph contains ``v``."""
        return self._holders.get(v, frozenset((self._owner[v],)))

    def border_nodes(self) -> Iterable[Node]:
        """Nodes present in more than one fragment."""
        for v, fs in self._holders.items():
            if len(fs) > 1:
                yield v

    def pairs(self, v: Node) -> List[Tuple[int, int]]:
        """The paper's ``G_P(v)``: pairs ``(i, j)`` with ``v ∈ F_i.O`` and
        ``v ∈ F_j.I`` (i.e. copy at ``i``, owned at ``j``)."""
        own = self._owner[v]
        return [(i, own) for i in self.holders(v) if i != own]

    def destinations(self, v: Node, from_fragment: int) -> FrozenSet[int]:
        """Fragments (other than the sender) that must learn about a
        change to a status variable of ``v``."""
        return frozenset(f for f in self.holders(v) if f != from_fragment)

    def __contains__(self, v: Node) -> bool:
        return v in self._owner


#: process-wide ids distinguishing fragmentation objects across pickling
_fragmentation_ids = itertools.count(1)

#: delta-log versions retained for worker-side replay; a worker whose
#: cached copy lags further behind is refreshed by full re-ship
_DELTA_LOG_LIMIT = 64


class Fragmentation:
    """A complete partition of ``G``: fragments plus the ``G_P`` index."""

    def __init__(self, graph: Graph, fragments: Sequence[Fragment],
                 strategy_name: str = "unknown"):
        self.graph = graph
        self.fragments = list(fragments)
        self.strategy_name = strategy_name
        # Identity + mutation counter: the process backend caches shipped
        # fragments worker-side keyed by (identity, version); structural
        # mutations (apply_delta) bump the version so stale copies are
        # refreshed on the next lease — by replaying the logged
        # per-fragment deltas when the log still covers the gap, by full
        # re-ship otherwise.
        self._token_id = next(_fragmentation_ids)
        self.version = 0
        # version -> {fid: FragmentDelta} for the last few applied
        # batches (insertion-ordered; oldest evicted first)
        self._delta_log: Dict[int, Dict[int, "FragmentDelta"]] = {}
        owner: Dict[Node, int] = {}
        holders: Dict[Node, Set[int]] = {}
        for frag in self.fragments:
            for v in frag.owned:
                owner[v] = frag.fid
            for v in frag.graph.nodes():
                holders.setdefault(v, set()).add(frag.fid)
        self.gp = FragmentationGraph(
            owner, {v: frozenset(fs) for v, fs in holders.items()})

    @classmethod
    def restored(cls, graph: Graph, fragments: Sequence[Fragment],
                 strategy_name: str = "unknown",
                 version: int = 0) -> "Fragmentation":
        """Rebuild a fragmentation from persisted state (the durable
        store's snapshot path).

        The ``G_P`` index is recomputed from the fragments' node sets —
        :func:`repro.core.updates.apply_delta` keeps fragment membership
        and the live index in lockstep, so the recomputation reproduces
        the maintained index exactly.  The restored object resumes at the
        persisted ``version`` but with an **empty delta log and a fresh
        cache token**: no replay chain can be proven across a process
        restart, so pooled workers holding copies from the previous
        incarnation are refreshed by full re-ship rather than trusted
        with an unverifiable delta replay.
        """
        frag = cls(graph, fragments, strategy_name=strategy_name)
        frag.version = version
        return frag

    @property
    def num_fragments(self) -> int:
        return len(self.fragments)

    @property
    def cache_token(self) -> Tuple[int, int]:
        """Key under which process-backend workers cache shipped
        fragments; changes whenever the fragmentation is mutated."""
        return (self._token_id, self.version)

    def bump_version(self) -> None:
        """Invalidate worker-side fragment caches after a mutation.

        Advances the version *without* a delta-log entry, so workers
        holding older copies fall back to a full re-ship — the escape
        hatch for mutations that bypass
        :func:`repro.core.updates.apply_delta`.  Published shared-memory
        segments for this token are staled for the same reason: no delta
        describes the mutation, so in-place patching is impossible.
        """
        self.version += 1
        from repro.runtime import shm
        shm.invalidate_token(self._token_id)

    def record_delta(self, touched: Dict[int, "FragmentDelta"]) -> None:
        """Log one applied update batch and bump the cache token.

        Called by :func:`repro.core.updates.apply_delta` after mutating
        fragments in place.  Each fragment delta is stamped with the new
        version as its sequence number; pooled process workers whose
        cached fragments lag by at most ``_DELTA_LOG_LIMIT`` logged
        versions are brought current by replaying these deltas instead
        of re-shipping whole fragments.
        """
        self.version += 1
        for delta in touched.values():
            delta.seq = self.version
        self._delta_log[self.version] = dict(touched)
        while len(self._delta_log) > _DELTA_LOG_LIMIT:
            del self._delta_log[next(iter(self._delta_log))]

    def replay_chain(self, from_version: int, to_version: int,
                     fids: Iterable[int]
                     ) -> Optional[Dict[int, List["FragmentDelta"]]]:
        """Per-fragment deltas turning ``from_version`` copies of the
        given fragments into ``to_version`` ones.

        Returns ``None`` when the log cannot prove the chain is complete
        (a version was evicted, or advanced via :meth:`bump_version`
        without a logged delta) — the caller must then fall back to a
        full re-ship.  Fragments untouched across the whole range map to
        no entry at all.
        """
        if from_version > to_version:
            return None
        chain: Dict[int, List["FragmentDelta"]] = {fid: [] for fid in fids}
        for version in range(from_version + 1, to_version + 1):
            step = self._delta_log.get(version)
            if step is None:
                return None
            for fid in chain:
                delta = step.get(fid)
                if delta is not None:
                    chain[fid].append(delta)
        return {fid: deltas for fid, deltas in chain.items() if deltas}

    @property
    def csr_snapshots_built(self) -> int:
        """Total CSR snapshot builds across fragments (lifetime count)."""
        return sum(f.csr_builds for f in self.fragments)

    @property
    def csr_snapshot_invalidations(self) -> int:
        """Total CSR snapshot drops across fragments (lifetime count)."""
        return sum(f.csr_invalidations for f in self.fragments)

    def fragment_of(self, v: Node) -> Fragment:
        """The fragment owning ``v``."""
        return self.fragments[self.gp.owner(v)]

    def __iter__(self):
        return iter(self.fragments)

    def __len__(self) -> int:
        return len(self.fragments)

    def __getitem__(self, fid: int) -> Fragment:
        return self.fragments[fid]

    def validate(self) -> None:
        """Check the partition invariants of paper Section 2.

        Raises ``AssertionError`` when the fragmentation does not cover the
        graph or the border sets are inconsistent with ``G_P``.
        """
        seen_nodes: Set[Node] = set()
        for frag in self.fragments:
            seen_nodes.update(frag.owned)
        assert seen_nodes == set(self.graph.nodes()), "owned sets must cover V"

        covered_edges: Set[Tuple[Node, Node]] = set()
        for frag in self.fragments:
            for u, v, _w in frag.graph.edges():
                covered_edges.add((u, v))
                if not self.graph.directed:
                    covered_edges.add((v, u))
        for u, v, _w in self.graph.edges():
            assert (u, v) in covered_edges, f"edge {(u, v)} not covered"

        for frag in self.fragments:
            for v in frag.inner:
                assert v in frag.owned, "F_i.I must be owned nodes"
            for v in frag.outer:
                assert v not in frag.owned, "F_i.O must be foreign nodes"
                assert self.gp.owner(v) != frag.fid


class PartitionStrategy(abc.ABC):
    """A graph partition strategy ``P`` (paper Table 2).

    Concrete strategies implement :meth:`assign` returning a node-to-
    fragment map; :meth:`partition` materializes edge-cut fragments from it.
    Vertex-cut strategies override :meth:`partition` directly.
    """

    name = "abstract"

    @abc.abstractmethod
    def assign(self, graph: Graph, num_fragments: int) -> Dict[Node, int]:
        """Map every node of ``graph`` to a fragment id in ``[0, m)``."""

    def partition(self, graph: Graph, num_fragments: int) -> Fragmentation:
        if num_fragments < 1:
            raise ValueError("need at least one fragment")
        assignment = self.assign(graph, num_fragments)
        return build_edge_cut_fragments(graph, assignment, num_fragments,
                                        strategy_name=self.name)


def build_edge_cut_fragments(graph: Graph, assignment: Mapping[Node, int],
                             num_fragments: int,
                             strategy_name: str = "custom") -> Fragmentation:
    """Materialize edge-cut fragments from a node assignment.

    Every edge ``(u, v)`` is stored at the fragment owning ``u``; if ``v``
    is owned elsewhere, a copy of ``v`` joins ``F_i.O`` and ``v`` joins the
    owner's ``F_j.I``.
    """
    missing = [v for v in graph.nodes() if v not in assignment]
    if missing:
        raise ValueError(f"assignment missing {len(missing)} nodes")

    owned: List[Set[Node]] = [set() for _ in range(num_fragments)]
    for v, fid in assignment.items():
        if not 0 <= fid < num_fragments:
            raise ValueError(f"fragment id {fid} out of range")
        owned[fid].add(v)

    locals_: List[Graph] = [Graph(directed=graph.directed)
                            for _ in range(num_fragments)]
    inner: List[Set[Node]] = [set() for _ in range(num_fragments)]
    outer: List[Set[Node]] = [set() for _ in range(num_fragments)]

    for fid in range(num_fragments):
        for v in owned[fid]:
            locals_[fid].add_node(v, graph.node_label(v))

    for u, v, w in graph.edges():
        fu, fv = assignment[u], assignment[v]
        label = graph.edge_label(u, v)
        locals_[fu].add_node(v, graph.node_label(v))
        locals_[fu].add_edge(u, v, weight=w, label=label)
        if fu != fv:
            outer[fu].add(v)
        if not graph.directed and fu != fv:
            # the symmetric orientation lives at fv as well
            locals_[fv].add_node(u, graph.node_label(u))
            locals_[fv].add_edge(v, u, weight=w, label=label)
            outer[fv].add(u)

    # F_i.I: owned nodes with an incoming cross edge.
    for u, v, _w in graph.edges():
        fu, fv = assignment[u], assignment[v]
        if fu != fv:
            inner[fv].add(v)
            if not graph.directed:
                inner[fu].add(u)

    fragments = [Fragment(fid, locals_[fid], owned[fid], inner[fid],
                          outer[fid]) for fid in range(num_fragments)]
    return Fragmentation(graph, fragments, strategy_name=strategy_name)


def build_vertex_cut_fragments(graph: Graph,
                               edge_assignment: Mapping[Tuple[Node, Node], int],
                               num_fragments: int,
                               strategy_name: str = "vertex-cut") -> Fragmentation:
    """Materialize vertex-cut fragments from an edge assignment.

    Each node is replicated in every fragment holding one of its edges; its
    *master* (owner) is the lowest such fragment id.  Replicated nodes are
    both entry and exit vertices, so they populate ``inner`` on the master
    and ``outer`` on the replicas.
    """
    locals_: List[Graph] = [Graph(directed=graph.directed)
                            for _ in range(num_fragments)]
    present: Dict[Node, Set[int]] = {}

    for u, v, w in graph.edges():
        fid = edge_assignment[(u, v)]
        if not 0 <= fid < num_fragments:
            raise ValueError(f"fragment id {fid} out of range")
        locals_[fid].add_node(u, graph.node_label(u))
        locals_[fid].add_node(v, graph.node_label(v))
        locals_[fid].add_edge(u, v, weight=w, label=graph.edge_label(u, v))
        present.setdefault(u, set()).add(fid)
        present.setdefault(v, set()).add(fid)

    # Isolated nodes go to fragment 0.
    for v in graph.nodes():
        if v not in present:
            locals_[0].add_node(v, graph.node_label(v))
            present[v] = {0}

    owned: List[Set[Node]] = [set() for _ in range(num_fragments)]
    inner: List[Set[Node]] = [set() for _ in range(num_fragments)]
    outer: List[Set[Node]] = [set() for _ in range(num_fragments)]
    for v, fids in present.items():
        master = min(fids)
        owned[master].add(v)
        if len(fids) > 1:
            inner[master].add(v)
            for fid in fids:
                if fid != master:
                    outer[fid].add(v)

    fragments = [Fragment(fid, locals_[fid], owned[fid], inner[fid],
                          outer[fid]) for fid in range(num_fragments)]
    return Fragmentation(graph, fragments, strategy_name=strategy_name)


def cut_edges(graph: Graph, assignment: Mapping[Node, int]) -> int:
    """Number of edges crossing fragments under a node assignment."""
    return sum(1 for u, v, _w in graph.edges()
               if assignment[u] != assignment[v])


def replication_factor(fragmentation: Fragmentation) -> float:
    """Average number of fragments holding each node (1.0 = no copies)."""
    total = sum(frag.num_nodes for frag in fragmentation)
    n = fragmentation.graph.num_nodes
    return total / n if n else 1.0
