"""Built-in partition strategies (paper Section 6, "Graph partition").

The paper's Partition Manager offers METIS, vertex-cut and edge-cut
partitions, 1-D and 2-D partitions, and a streaming-style strategy
(Stanton–Kliot).  We provide the same menu:

* :class:`HashPartition` — baseline edge-cut by node hash;
* :class:`RangePartition` — 1-D: contiguous node-id ranges;
* :class:`GridPartition` — 2-D: block-row of the adjacency matrix by source,
  sub-block by destination;
* :class:`StreamingPartition` — linear deterministic greedy (LDG) of
  Stanton & Kliot, KDD 2012;
* :class:`MetisLikePartition` — multilevel heavy-edge-matching coarsening
  with greedy balanced seeding and Kernighan–Lin-style boundary refinement
  (the METIS algorithmic family);
* :class:`VertexCutPartition` — greedy edge placement minimizing replication
  (PowerGraph-style).
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from repro.graph.graph import Graph, Node
from repro.partition.base import (Fragmentation, PartitionStrategy,
                                  build_vertex_cut_fragments)
from repro.runtime.message import stable_hash

__all__ = [
    "HashPartition",
    "RangePartition",
    "GridPartition",
    "StreamingPartition",
    "MetisLikePartition",
    "VertexCutPartition",
    "get_strategy",
    "STRATEGIES",
]


class HashPartition(PartitionStrategy):
    """Edge-cut by stable hash of the node id."""

    name = "hash"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def assign(self, graph: Graph, num_fragments: int) -> Dict[Node, int]:
        # stable_hash, not builtin hash: string node ids must land on the
        # same fragment in every process (PYTHONHASHSEED randomizes
        # builtin str hashing, which made layouts — and therefore
        # supersteps and traffic — vary between identical runs).
        return {v: (stable_hash(v) ^ self.seed) % num_fragments
                for v in graph.nodes()}


class RangePartition(PartitionStrategy):
    """1-D partition: nodes in iteration order, split into equal ranges.

    For generator-produced graphs whose ids follow creation order this is
    the paper's 1-D vertex distribution.
    """

    name = "range"

    def assign(self, graph: Graph, num_fragments: int) -> Dict[Node, int]:
        nodes = sorted(graph.nodes(), key=repr)
        per = max(1, -(-len(nodes) // num_fragments))  # ceil division
        return {v: min(i // per, num_fragments - 1)
                for i, v in enumerate(nodes)}


class GridPartition(PartitionStrategy):
    """2-D partition emphasizing traversal parallelism (paper [12]).

    Arranges fragments in an ``r x c`` grid (``r*c >= m``); a node's row is
    chosen by hash, its column by the hash of its lowest-id neighbor, so
    that adjacent matrix blocks land near each other.
    """

    name = "grid"

    def assign(self, graph: Graph, num_fragments: int) -> Dict[Node, int]:
        rows = 1
        while (rows + 1) ** 2 <= num_fragments:
            rows += 1
        cols = max(1, num_fragments // rows)
        assignment: Dict[Node, int] = {}
        for v in graph.nodes():
            r = stable_hash(v) % rows
            nbrs = list(graph.successors(v))
            anchor = min(nbrs, key=repr) if nbrs else v
            c = stable_hash(anchor) % cols
            assignment[v] = min(r * cols + c, num_fragments - 1)
        return assignment


class StreamingPartition(PartitionStrategy):
    """Linear deterministic greedy streaming partitioner (Stanton–Kliot).

    Nodes arrive in a stream; each is placed on the fragment maximizing
    ``|N(v) ∩ P_i| * (1 - |P_i| / capacity)`` — neighbors already placed,
    damped by a load penalty.  The paper cites this as its "fast
    streaming-style strategy that assigns edges to high degree nodes to
    reduce cross edges".
    """

    name = "streaming"

    def __init__(self, slack: float = 1.1, seed: int = 0):
        self.slack = slack
        self.seed = seed

    def _rng(self) -> random.Random:
        """A fresh, explicitly seeded generator per assignment.

        Never the global ``random`` module: ambient ``random.seed(...)``
        calls elsewhere in the process (benchmarks, fuzzers, user code)
        must not change where nodes land — the serving layer caches
        fragmentations and ships fragments by content, so placement must
        be a pure function of ``(graph, strategy parameters)``.
        """
        return random.Random(self.seed)

    def assign(self, graph: Graph, num_fragments: int) -> Dict[Node, int]:
        n = graph.num_nodes
        capacity = max(1.0, self.slack * n / num_fragments)
        rng = self._rng()
        order = list(graph.nodes())
        rng.shuffle(order)
        assignment: Dict[Node, int] = {}
        sizes = [0] * num_fragments
        for v in order:
            placed_nbrs = [0] * num_fragments
            for u in graph.neighbors(v):
                fid = assignment.get(u)
                if fid is not None:
                    placed_nbrs[fid] += 1
            best_fid, best_score = 0, float("-inf")
            for fid in range(num_fragments):
                penalty = 1.0 - sizes[fid] / capacity
                score = placed_nbrs[fid] * penalty
                if score > best_score or (score == best_score
                                          and sizes[fid] < sizes[best_fid]):
                    best_fid, best_score = fid, score
            assignment[v] = best_fid
            sizes[best_fid] += 1
        return assignment


class MetisLikePartition(PartitionStrategy):
    """Multilevel edge-cut partitioner in the METIS family.

    Three phases, as in Karypis & Kumar:

    1. *Coarsening*: repeated heavy-edge matching collapses matched node
       pairs until the graph is small;
    2. *Initial partition*: greedy BFS-based balanced seeding on the
       coarsest graph;
    3. *Uncoarsening*: project the partition back up, applying a
       Kernighan–Lin-style boundary refinement pass at every level.
    """

    name = "metis"

    def __init__(self, coarsen_until: int = 64, refine_passes: int = 4,
                 seed: int = 0):
        self.coarsen_until = coarsen_until
        self.refine_passes = refine_passes
        self.seed = seed

    def _rng(self) -> random.Random:
        """A fresh, explicitly seeded generator per assignment (see
        :meth:`StreamingPartition._rng` — same reproducibility
        contract)."""
        return random.Random(self.seed)

    # -- coarsening ---------------------------------------------------
    def _heavy_edge_matching(self, adj: Dict[Node, Dict[Node, float]],
                             ) -> Dict[Node, Node]:
        """Match each node with its heaviest unmatched neighbor
        (deterministic: nodes visited in degree order, ties broken by
        adjacency order — no randomness in this phase)."""
        matched: Dict[Node, Node] = {}
        order = sorted(adj, key=lambda v: len(adj[v]))
        for v in order:
            if v in matched:
                continue
            best, best_w = None, -1.0
            for u, w in adj[v].items():
                if u not in matched and u != v and w > best_w:
                    best, best_w = u, w
            if best is None:
                matched[v] = v
            else:
                matched[v] = best
                matched[best] = v
        return matched

    def _coarsen(self, adj: Dict[Node, Dict[Node, float]]):
        """One coarsening level; returns (coarse_adj, mapping fine->coarse)."""
        matched = self._heavy_edge_matching(adj)
        coarse_of: Dict[Node, int] = {}
        next_id = 0
        for v in adj:
            if v in coarse_of:
                continue
            partner = matched[v]
            coarse_of[v] = next_id
            coarse_of[partner] = next_id
            next_id += 1
        coarse: Dict[int, Dict[int, float]] = {i: {} for i in range(next_id)}
        for v, nbrs in adj.items():
            cv = coarse_of[v]
            for u, w in nbrs.items():
                cu = coarse_of[u]
                if cu == cv:
                    continue
                coarse[cv][cu] = coarse[cv].get(cu, 0.0) + w
        return coarse, coarse_of

    # -- initial partition ---------------------------------------------
    def _initial_partition(self, adj: Dict[Node, Dict[Node, float]],
                           num_fragments: int,
                           rng: random.Random) -> Dict[Node, int]:
        """Greedy balanced BFS growth from random seeds."""
        nodes = list(adj)
        target = -(-len(nodes) // num_fragments)
        unassigned = set(nodes)
        assignment: Dict[Node, int] = {}
        for fid in range(num_fragments):
            if not unassigned:
                break
            seed = rng.choice(sorted(unassigned, key=repr))
            frontier = [seed]
            size = 0
            while frontier and size < target:
                v = frontier.pop()
                if v not in unassigned:
                    continue
                unassigned.discard(v)
                assignment[v] = fid
                size += 1
                frontier.extend(u for u in adj[v] if u in unassigned)
        for v in unassigned:
            assignment[v] = rng.randrange(num_fragments)
        return assignment

    # -- refinement ----------------------------------------------------
    def _refine(self, adj: Dict[Node, Dict[Node, float]],
                assignment: Dict[Node, int], num_fragments: int) -> None:
        """KL-style pass: move boundary nodes to the fragment where they
        have the largest connection gain, respecting a balance cap."""
        sizes = [0] * num_fragments
        for fid in assignment.values():
            sizes[fid] += 1
        cap = max(2, int(1.05 * len(assignment) / num_fragments) + 1)
        for _ in range(self.refine_passes):
            moved = 0
            for v, nbrs in adj.items():
                if not nbrs:
                    continue
                cur = assignment[v]
                conn = [0.0] * num_fragments
                for u, w in nbrs.items():
                    conn[assignment[u]] += w
                best = max(range(num_fragments),
                           key=lambda f: (conn[f], f == cur))
                if best != cur and conn[best] > conn[cur] \
                        and sizes[best] < cap and sizes[cur] > 1:
                    assignment[v] = best
                    sizes[cur] -= 1
                    sizes[best] += 1
                    moved += 1
            if not moved:
                break

    def assign(self, graph: Graph, num_fragments: int) -> Dict[Node, int]:
        # One explicitly seeded generator threaded through every phase
        # that draws randomness (initial-partition seeding/spill); the
        # coarsening and refinement phases are deterministic.
        rng = self._rng()
        # Symmetrized weighted adjacency for the cut objective.
        adj: Dict[Node, Dict[Node, float]] = {v: {} for v in graph.nodes()}
        for u, v, w in graph.edges():
            if u == v:
                continue
            adj[u][v] = adj[u].get(v, 0.0) + w
            adj[v][u] = adj[v].get(u, 0.0) + w

        levels = []  # (adj, fine->coarse map)
        current = adj
        while len(current) > max(self.coarsen_until,
                                 4 * num_fragments):
            coarse, mapping = self._coarsen(current)
            if len(coarse) >= len(current):  # no progress (all isolated)
                break
            levels.append((current, mapping))
            current = coarse

        assignment = self._initial_partition(current, num_fragments, rng)
        self._refine(current, assignment, num_fragments)

        # Project back through the levels, refining at each.
        for fine_adj, mapping in reversed(levels):
            assignment = {v: assignment[mapping[v]] for v in fine_adj}
            self._refine(fine_adj, assignment, num_fragments)
        return assignment


class VertexCutPartition(PartitionStrategy):
    """Greedy vertex-cut (edge partition), PowerGraph-style.

    Each edge is placed to maximize endpoint co-location: prefer fragments
    already holding both endpoints, then one, then the least-loaded.
    """

    name = "vertex-cut"

    def assign(self, graph: Graph, num_fragments: int) -> Dict[Node, int]:
        raise NotImplementedError(
            "vertex-cut partitions edges; use partition() directly")

    def partition(self, graph: Graph, num_fragments: int) -> Fragmentation:
        if num_fragments < 1:
            raise ValueError("need at least one fragment")
        seen: Dict[Node, Set[int]] = {}
        loads = [0] * num_fragments
        edge_assignment: Dict[Tuple[Node, Node], int] = {}
        for u, v, _w in graph.edges():
            su = seen.get(u, set())
            sv = seen.get(v, set())
            both = su & sv
            either = su | sv
            if both:
                fid = min(both, key=lambda f: (loads[f], f))
            elif either:
                fid = min(either, key=lambda f: (loads[f], f))
            else:
                fid = min(range(num_fragments), key=lambda f: (loads[f], f))
            edge_assignment[(u, v)] = fid
            loads[fid] += 1
            seen.setdefault(u, set()).add(fid)
            seen.setdefault(v, set()).add(fid)
        return build_vertex_cut_fragments(graph, edge_assignment,
                                          num_fragments,
                                          strategy_name=self.name)


STRATEGIES = {
    cls.name: cls for cls in (HashPartition, RangePartition, GridPartition,
                              StreamingPartition, MetisLikePartition,
                              VertexCutPartition)
}


def get_strategy(name: str, **kwargs) -> PartitionStrategy:
    """Look up a partition strategy by its registered name."""
    try:
        return STRATEGIES[name](**kwargs)
    except KeyError:
        raise ValueError(f"unknown partition strategy {name!r}; "
                         f"available: {sorted(STRATEGIES)}") from None
