"""Graph partitioning: fragments, border sets, G_P, and strategies."""

from repro.partition.base import (Fragment, Fragmentation,
                                  FragmentationGraph, PartitionStrategy,
                                  build_edge_cut_fragments,
                                  build_vertex_cut_fragments, cut_edges,
                                  replication_factor)
from repro.partition.strategies import (STRATEGIES, GridPartition,
                                        HashPartition, MetisLikePartition,
                                        RangePartition, StreamingPartition,
                                        VertexCutPartition, get_strategy)

__all__ = [
    "Fragment", "Fragmentation", "FragmentationGraph", "PartitionStrategy",
    "build_edge_cut_fragments", "build_vertex_cut_fragments", "cut_edges",
    "replication_factor", "HashPartition", "RangePartition", "GridPartition",
    "StreamingPartition", "MetisLikePartition", "VertexCutPartition",
    "get_strategy", "STRATEGIES",
]
