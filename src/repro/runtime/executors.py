"""Pluggable execution backends for the simulated cluster.

The paper's engine runs PEval/IncEval on ``n`` shared-nothing physical
workers.  Historically :class:`~repro.runtime.cluster.SimulatedCluster`
offered only serial or thread-pool execution of per-fragment closures —
which keeps the BSP *accounting* honest but caps every dict-path workload
at one core (the GIL).  This module makes the execution layer a pluggable
backend with three implementations:

* :class:`SerialBackend` — deterministic in-process execution (default);
* :class:`ThreadBackend` — a thread pool; parallel for kernels that drop
  the GIL (numpy), still one core for pure-Python compute;
* :class:`ProcessBackend` — a persistent ``multiprocessing`` worker pool.
  Fragments are shipped to the workers **once per fragmentation** and
  cached there; afterwards only queries, step commands, messages and
  parameter updates cross the pipe.  When a fragmentation is *mutated*
  (:func:`repro.core.updates.apply_delta`), workers holding copies of
  the previous version are brought current by replaying the logged
  per-fragment :class:`~repro.graph.delta.FragmentDelta` records —
  compact delta shipping keyed by the fragmentation's version sequence —
  and only fall back to a full re-ship when the delta log no longer
  covers the gap.  Where the platform provides shared memory, fragments
  are not even shipped: the coordinator *publishes* each fragment once
  into a named segment (``repro.runtime.shm``) and workers receive only
  a compact :class:`~repro.runtime.shm.SegmentDescriptor`, attaching
  zero-copy CSR views in place — fragment bytes on the pipe drop to
  near zero and the worker-side CSR rebuild disappears.  Attach or
  publish failures degrade per fragment to the pickle path (counted in
  ``shm_fallbacks``); bulk pickled transfers still ride ``/dev/shm``
  spill files above 1 MiB.

Two execution contracts coexist:

* **closure tasks** (``run_tasks``) — the baseline engines submit one
  thunk per virtual worker; closures cannot cross a process boundary, so
  only the *inline* backends support them;
* **the PIE session protocol** (``open``/``step``) — the GRAPE engine
  describes each superstep as data (:class:`StepCommand` per fragment),
  the backend executes it wherever the fragment lives and returns a
  :class:`StepOutcome` carrying the timed compute, the fragment's
  changed-parameter report and its drained explicit-channel messages.
  This is what lets the process backend keep fragments and states
  resident instead of re-shipping closures every superstep.

Backend selection is by name (``"serial"``, ``"thread"``, ``"process"``)
or instance; named lookups share one module-level backend per name, so
every engine built by a service reuses one warm process pool.  The
``REPRO_BACKEND`` environment variable supplies the default for engines
that do not pin a backend explicitly.
"""

from __future__ import annotations

import abc
import atexit
import os
import pickle
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Hashable, List, Optional, Sequence,
                    Tuple, Union)

from repro.obs import events as _events
from repro.resilience import faults as _fault_plane
from repro.resilience.errors import DeadlineExceeded, QueryCancelled
from repro.resilience.faults import FaultAction
from repro.runtime import shm
from repro.runtime.fault import FailureInjector, WorkerFailure

__all__ = [
    "BACKEND_ENV_VAR",
    "ExecutorBackend",
    "ExecutorSession",
    "ProcessBackend",
    "SerialBackend",
    "StepCommand",
    "StepOutcome",
    "ThreadBackend",
    "UnpicklableProgramError",
    "WorkerHung",
    "WorkerProcessDied",
    "available_backends",
    "resolve_backend",
]

#: environment variable consulted when an engine has no explicit backend
BACKEND_ENV_VAR = "REPRO_BACKEND"

# Superstep phases a worker can be asked to run.
PHASE_IDLE = "idle"        # no message this round; report + drain only
PHASE_PEVAL = "peval"      # partial evaluation Q(F_i)
PHASE_INC = "inc"          # incremental evaluation Q(F_i ⊕ M_i)
PHASE_NI = "ni"            # GRAPE-NI ablation: apply message, redo PEval


class UnpicklableProgramError(TypeError):
    """A program/query/fragment could not cross the process boundary."""


class WorkerProcessDied(RuntimeError):
    """A pooled worker process died mid-exchange (crash or ``kill -9``).

    Distinct from :exc:`~repro.runtime.fault.WorkerFailure` (a *simulated*
    failure injected into an inline backend): this is a real OS-level
    death.  The engine recovers from it when disk checkpoints are enabled
    — the session is re-opened on fresh workers and the last consistent
    checkpoint restored — and re-raises it otherwise.
    """


class WorkerHung(WorkerProcessDied):
    """A pooled worker stopped heart-beating mid-exchange.

    Raised by the coordinator after ``heartbeat_timeout_s`` without a
    beat: the worker was killed (a frozen process cannot be trusted to
    ever reply) and its handle marked dead.  Subclasses
    :exc:`WorkerProcessDied` so every death-recovery path — checkpoint
    restore on fresh workers, service-level retry, the circuit breaker
    — treats a hang exactly like a crash, which operationally it is.
    """


@dataclass
class StepCommand:
    """One fragment's share of a superstep, expressed as data.

    ``phase`` selects which sequential function runs; ``message`` is the
    composed update-parameter message ``M_i``; ``designated`` and
    ``keyvalue`` are the explicit channels (paper Section 3.5) routed to
    this fragment.  ``full_report`` forces a full
    ``read_update_params`` read even for programs implementing the
    incremental dirty-set protocol (needed right after graph mutations).
    """

    phase: str = PHASE_IDLE
    message: Optional[Dict] = None
    designated: Optional[list] = None
    keyvalue: Optional[Dict[Hashable, list]] = None
    full_report: bool = False
    #: injected fault to act out before computing (``exec.step`` site of
    #: the :class:`~repro.resilience.faults.FaultPlane`); embedded by the
    #: engine — and stripped before any replay, so a recovered step
    #: never re-fires the same fault
    fault: Optional[FaultAction] = None
    #: tracing: id of the coordinator-side superstep span this command
    #: belongs to.  ``None`` (the default) means tracing is off and the
    #: worker measures nothing beyond ``elapsed``.
    span_id: Optional[str] = None


@dataclass
class StepOutcome:
    """What one fragment's superstep produced.

    ``report`` is ``("changed", params)`` when the program tracks its own
    dirty keys, or ``("full", params)`` when the coordinator must diff the
    full parameter dict against the fragment's last report.
    """

    elapsed: float = 0.0
    report: Tuple[str, Dict] = ("changed", {})
    designated: Dict[int, list] = field(default_factory=dict)
    keyvalue: list = field(default_factory=list)
    failed: Optional[WorkerFailure] = None
    #: tracing: worker-side measurements as ``(name, duration_s, tags)``
    #: tuples — spans travel the pipe by value, never as Span objects —
    #: re-attached by the engine under the superstep span whose id the
    #: command carried.  Empty when tracing is off.
    spans: List[Tuple[str, float, Dict]] = field(default_factory=list)


def run_phase(program, query, fragment, state, command: StepCommand) -> None:
    """Execute the timed compute portion of one fragment superstep.

    Shared verbatim between the inline sessions and the process workers so
    every backend runs byte-identical semantics.
    """
    if command.designated:
        program.deliver_designated(query, fragment, state, command.designated)
    if command.keyvalue:
        program.deliver_keyvalue(query, fragment, state, command.keyvalue)
    phase = command.phase
    if phase == PHASE_PEVAL:
        program.peval(query, fragment, state)
    elif phase == PHASE_INC:
        program.inceval(query, fragment, state, command.message or {})
    elif phase == PHASE_NI:
        program.apply_message(query, fragment, state, command.message or {})
        program.peval(query, fragment, state)
    elif phase != PHASE_IDLE:
        raise ValueError(f"unknown step phase {phase!r}")


def read_report(program, query, fragment, state,
                full: bool) -> Tuple[str, Dict]:
    """Read one fragment's post-step parameter report.

    With ``full`` the program's dirty set is consumed (so it cannot be
    re-reported next round) and the full parameter dict is returned for a
    coordinator-side diff — the semantics
    :meth:`~repro.core.engine.GrapeEngine` documents for ``force_full``.
    """
    changed = program.read_changed_params(query, fragment, state)
    if full and changed is not None:
        changed = None
    if changed is None:
        return ("full", program.read_update_params(query, fragment, state))
    return ("changed", changed)


def _execute_command(program, query, fragment, state,
                     command: StepCommand) -> StepOutcome:
    """Run one command and package the outcome (used by every backend)."""
    start = time.perf_counter()
    run_phase(program, query, fragment, state, command)
    elapsed = time.perf_counter() - start
    if command.span_id is None:
        report = read_report(program, query, fragment, state,
                             command.full_report)
        designated, keyvalue = program.drain_messages(query, fragment, state)
        return StepOutcome(elapsed=elapsed, report=report,
                           designated=designated, keyvalue=keyvalue)
    t0 = time.perf_counter()
    report = read_report(program, query, fragment, state,
                         command.full_report)
    designated, keyvalue = program.drain_messages(query, fragment, state)
    report_s = time.perf_counter() - t0
    return StepOutcome(elapsed=elapsed, report=report,
                       designated=designated, keyvalue=keyvalue,
                       spans=[("worker.compute", elapsed,
                               {"phase": command.phase}),
                              ("worker.report", report_s, {})])


# ---------------------------------------------------------------------------
# The backend protocol
# ---------------------------------------------------------------------------
class ExecutorSession(abc.ABC):
    """One engine run's execution context.

    Created by :meth:`ExecutorBackend.open` with the program, query and
    fragments bound; the engine then drives supersteps through
    :meth:`step` and pulls states back for Assemble.
    """

    #: serialized bytes that crossed a process pipe (0 for inline backends)
    pipe_bytes: int = 0
    #: serialized bytes of per-fragment deltas replayed on workers to
    #: bring cached fragment copies current (0 for inline backends)
    delta_bytes_shipped: int = 0
    #: fragments shipped to workers in full during open()
    fragments_shipped: int = 0
    #: fragments brought current worker-side by delta replay instead
    fragments_delta_shipped: int = 0
    #: serialized bytes of whole-fragment payloads that crossed the pipe
    #: (zero on the shared-memory descriptor path — workers attach the
    #: published segments instead of receiving fragment pickles)
    fragment_bytes_shipped: int = 0
    #: fragments that fell back to pickle shipping because a segment
    #: could not be published or attached (permissions, exhausted
    #: /dev/shm, injected ``exec.shm.attach`` faults)
    shm_fallbacks: int = 0
    #: hung-worker grace (seconds without a heartbeat before the worker
    #: is declared dead); set by the engine after open, honored by
    #: remote sessions on every exchange, ignored by inline ones
    hang_timeout: Optional[float] = None

    @abc.abstractmethod
    def init_states(self) -> None:
        """Create every fragment's state via ``program.init_state``."""

    @abc.abstractmethod
    def apply_preprocess(self, payloads: Dict[int, Any]) -> None:
        """Deliver pre-PEval payloads (``program.apply_preprocess``)."""

    @abc.abstractmethod
    def step(self, commands: Dict[int, StepCommand], *,
             deadline: Optional[float] = None,
             cancel: Optional[threading.Event] = None,
             ) -> Dict[int, StepOutcome]:
        """Execute one superstep: one command per fragment id.

        ``deadline`` is an absolute ``time.monotonic`` cutoff and
        ``cancel`` a cooperative abort flag; remote sessions watch both
        while waiting on worker replies, inline sessions leave
        enforcement to the engine's superstep-boundary checks (an
        in-process compute cannot be preempted safely).
        """

    @abc.abstractmethod
    def collect_states(self) -> Dict[int, Any]:
        """The per-fragment states (pulled back from workers if remote)."""

    def replace_states(self, states: Dict[int, Any]) -> None:
        """Overwrite every fragment state (checkpoint recovery)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpoint recovery")

    def close(self) -> None:
        """Release resources (workers return to their backend's pool)."""


class ExecutorBackend(abc.ABC):
    """A way of executing per-fragment work.

    ``inline`` backends run everything in the coordinator process and
    additionally support arbitrary closure tasks (:meth:`run_tasks`, used
    by the baseline engines); the process backend supports only the PIE
    session protocol.
    """

    name: str = "abstract"
    inline: bool = True

    @abc.abstractmethod
    def open(self, program, query, fragmentation, *, num_workers: int,
             failure_injector: Optional[FailureInjector] = None,
             trace=None) -> ExecutorSession:
        """Bind a session for one engine run.

        ``trace`` is an optional :class:`repro.obs.trace.Span` the
        backend may hang session-setup child spans off (fragment
        shipping, shm attaches, delta replay).  Inline backends have no
        setup work and ignore it.
        """

    @abc.abstractmethod
    def run_tasks(self, thunks: Sequence[Callable[[], Any]],
                  num_workers: int) -> List[Any]:
        """Execute closure tasks (inline backends only)."""

    def close(self) -> None:
        """Release long-lived resources (worker processes, thread pools)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------------
# Inline backends (serial / thread)
# ---------------------------------------------------------------------------
class _InlineSession(ExecutorSession):
    """States live in the coordinator; compute runs in-process."""

    def __init__(self, backend: "ExecutorBackend", program, query,
                 fragmentation, num_workers: int,
                 failure_injector: Optional[FailureInjector]):
        self._backend = backend
        self._program = program
        self._query = query
        self._fragments = {f.fid: f for f in fragmentation.fragments}
        self._num_workers = num_workers
        self._injector = failure_injector
        self._states: Dict[int, Any] = {}
        self._step_index = 0

    def init_states(self) -> None:
        self._states = {fid: self._program.init_state(self._query, frag)
                        for fid, frag in self._fragments.items()}

    def apply_preprocess(self, payloads: Dict[int, Any]) -> None:
        for fid, payload in payloads.items():
            self._program.apply_preprocess(self._query, self._fragments[fid],
                                           self._states[fid], payload)

    def step(self, commands: Dict[int, StepCommand], *,
             deadline: Optional[float] = None,
             cancel: Optional[threading.Event] = None,
             ) -> Dict[int, StepOutcome]:
        step_index = self._step_index
        self._step_index += 1

        def run_one(fid: int) -> Tuple[int, StepOutcome]:
            if self._injector is not None and self._injector.should_fail(
                    worker=fid, superstep=step_index):
                return fid, StepOutcome(
                    failed=WorkerFailure(worker=fid, superstep=step_index))
            fault = commands[fid].fault
            if fault is not None:
                # Inline acting of plane faults: a "crash" surfaces as a
                # simulated WorkerFailure (same recovery path as the
                # injector); "hang"/"slow" stall the compute, which the
                # engine's deadline check bounds at the next superstep.
                if fault.kind == "crash":
                    return fid, StepOutcome(failed=WorkerFailure(
                        worker=fid, superstep=step_index))
                if fault.kind == "hang":
                    time.sleep(float(fault.param("hang_s", 0.5)))
                elif fault.kind == "slow":
                    time.sleep(float(fault.param("delay_s", 0.05)))
            outcome = _execute_command(self._program, self._query,
                                       self._fragments[fid],
                                       self._states[fid], commands[fid])
            return fid, outcome

        fids = sorted(commands)
        return dict(self._backend.run_tasks(
            [lambda fid=fid: run_one(fid) for fid in fids],
            self._num_workers))

    def collect_states(self) -> Dict[int, Any]:
        return self._states

    def replace_states(self, states: Dict[int, Any]) -> None:
        self._states.clear()
        self._states.update(states)


class SerialBackend(ExecutorBackend):
    """Deterministic single-threaded execution (the default)."""

    name = "serial"
    inline = True

    def open(self, program, query, fragmentation, *, num_workers: int,
             failure_injector: Optional[FailureInjector] = None,
             trace=None) -> ExecutorSession:
        return _InlineSession(self, program, query, fragmentation,
                              num_workers, failure_injector)

    def run_tasks(self, thunks: Sequence[Callable[[], Any]],
                  num_workers: int) -> List[Any]:
        return [thunk() for thunk in thunks]


class ThreadBackend(ExecutorBackend):
    """Thread-pool execution.

    Timing still uses per-task perf counters, so the BSP cost model is
    unaffected; wall-clock gains are limited to GIL-dropping kernels.
    """

    name = "thread"
    inline = True

    def __init__(self):
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_width = 0
        self._retired: List[ThreadPoolExecutor] = []
        self._lock = threading.Lock()

    def _pool_for(self, width: int) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None or self._pool_width < width:
                if self._pool is not None:
                    # a concurrent session may still be mapping over it;
                    # retire it instead of shutting it down under them
                    self._retired.append(self._pool)
                self._pool = ThreadPoolExecutor(
                    max_workers=width, thread_name_prefix="repro-exec")
                self._pool_width = width
            return self._pool

    def open(self, program, query, fragmentation, *, num_workers: int,
             failure_injector: Optional[FailureInjector] = None,
             trace=None) -> ExecutorSession:
        return _InlineSession(self, program, query, fragmentation,
                              num_workers, failure_injector)

    def run_tasks(self, thunks: Sequence[Callable[[], Any]],
                  num_workers: int) -> List[Any]:
        if len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        pool = self._pool_for(max(2, num_workers))
        return list(pool.map(lambda thunk: thunk(), thunks))

    def close(self) -> None:
        with self._lock:
            pools = self._retired + ([self._pool] if self._pool else [])
            self._pool = None
            self._pool_width = 0
            self._retired = []
        for pool in pools:
            pool.shutdown(wait=True)


# ---------------------------------------------------------------------------
# Process backend plumbing
# ---------------------------------------------------------------------------
#: payloads at least this large ride shared memory instead of the pipe
_SHM_THRESHOLD = 1 << 20


def _shm_dir() -> Optional[str]:
    """Writable tmpfs for bulk transfers, if the platform provides one.

    ``/dev/shm`` is POSIX shared memory by another name — a file there
    never touches a disk, so the receiver reads the sender's pages
    straight from the page cache.  Files sidestep the
    ``multiprocessing.shared_memory`` resource-tracker accounting, which
    (before the 3.13 ``track=`` parameter) cannot express a segment
    created in one process and unlinked in another without spurious
    KeyErrors or leak warnings.
    """
    path = "/dev/shm"
    if os.path.isdir(path) and os.access(path, os.W_OK):
        return path
    return None


_SHM_DIR = _shm_dir()


def _pickle_payload(obj: Any) -> bytes:
    """Pickle a cross-process payload, translating failures into the
    actionable :class:`UnpicklableProgramError` (used both by the
    channel framing and by pre-pickled fragment/replay blobs, which are
    serialized early so their byte size can be accounted)."""
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise UnpicklableProgramError(
            f"payload cannot cross the process boundary: {exc}\n"
            "backend='process' requires the PIE program, its query, "
            "its states and every fragment to be picklable — define "
            "programs at module level and keep state dataclasses free "
            "of locks, generators and open handles (see README, "
            "'Execution backends').") from exc


class _Channel:
    """Request/reply framing over a multiprocessing connection.

    Every payload is pickled explicitly (so pickle-safety is enforced even
    under the ``fork`` start method) and counted; payloads above
    ``_SHM_THRESHOLD`` are written to a shared-memory file with only the
    path crossing the pipe.  The receiver reads the bytes out and unlinks
    the file immediately.
    """

    def __init__(self, conn):
        self._conn = conn
        self.bytes_sent = 0
        self.bytes_received = 0
        # shm files we created whose consumption is not yet confirmed;
        # request/reply framing means a successful recv() proves the
        # peer consumed everything sent before it, and close() unlinks
        # whatever is still pending (peer died mid-exchange) so crashed
        # workers cannot leak RAM-backed tmpfs files.
        self._pending_shm: List[str] = []

    def send(self, obj: Any) -> int:
        blob = _pickle_payload(obj)
        self.bytes_sent += len(blob)
        if _SHM_DIR is not None and len(blob) >= _SHM_THRESHOLD:
            path = None
            try:
                import tempfile
                fd, path = tempfile.mkstemp(prefix="repro-ipc-",
                                            dir=_SHM_DIR)
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
            except OSError:  # tmpfs full or gone: fall back to the pipe
                if path is not None:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
            else:
                self._pending_shm.append(path)
                self._conn.send_bytes(pickle.dumps(("shm", path)))
                return len(blob)
        self._conn.send_bytes(pickle.dumps(("pipe",)))
        self._conn.send_bytes(blob)
        return len(blob)

    def poll(self, timeout: float) -> bool:
        """Whether a reply is ready within ``timeout`` seconds."""
        return self._conn.poll(timeout)

    def recv(self) -> Any:
        header = pickle.loads(self._conn.recv_bytes())
        if header[0] == "shm":
            path = header[1]
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
            finally:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - already gone
                    pass
        else:
            blob = self._conn.recv_bytes()
        self.bytes_received += len(blob)
        # the peer replied, so everything we sent before is consumed
        self._pending_shm.clear()
        return pickle.loads(blob)

    def close(self) -> None:
        self._conn.close()
        for path in self._pending_shm:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._pending_shm.clear()


#: fragmentation tokens a pooled worker keeps resident; least recently
#: used beyond this are evicted (mirrored coordinator-side in
#: ``_evict_cached`` — the two policies must stay identical)
_WORKER_CACHE_TOKENS = 8


def _evict_cached(cache: Dict[Any, Any], token) -> List[Any]:
    """Shared LRU policy for the worker fragment cache and its
    coordinator-side mirror: ``token`` becomes most recently used, older
    versions of the same fragmentation go immediately, and the least
    recently used entries are dropped beyond ``_WORKER_CACHE_TOKENS`` —
    a long-running pool must not accumulate every graph it ever served.
    Returns the evicted tokens so callers can release shared-memory
    pins tied to them.
    """
    evicted: List[Any] = []
    for stale in [t for t in cache if t[0] == token[0] and t != token]:
        del cache[stale]
        evicted.append(stale)
    if token in cache:  # refresh recency (dicts keep insertion order)
        cache[token] = cache.pop(token)
    while len(cache) > _WORKER_CACHE_TOKENS:
        oldest = next(t for t in cache if t != token)
        del cache[oldest]
        evicted.append(oldest)
    return evicted


#: how often a pooled worker writes its heartbeat (seconds)
_HEARTBEAT_INTERVAL_S = 0.02
#: how often a waiting coordinator re-polls the reply pipe (seconds)
_RECV_POLL_S = 0.02


def _apply_worker_fault(action: FaultAction,
                        hb_pause: "threading.Event") -> None:
    # pragma: no cover - runs in child process
    """Act out an injected ``exec.step`` fault inside a pooled worker.

    ``crash`` exits the process hard (no cleanup — that is the point);
    ``hang`` freezes the worker *including its heartbeat thread* for
    ``hang_s`` (a truly wedged process beats nothing), which is what
    makes coordinator-side missed-heartbeat detection honest; ``slow``
    just delays the compute, heartbeats still flowing.
    """
    kind = action.kind
    if kind == "crash":
        os._exit(32)
    elif kind == "hang":
        hb_pause.set()
        try:
            time.sleep(float(action.param("hang_s", 30.0)))
        finally:
            hb_pause.clear()
    elif kind == "slow":
        time.sleep(float(action.param("delay_s", 0.05)))


def _worker_main(conn, heartbeat=None) -> None:
    # pragma: no cover - runs in child process
    """Worker process loop: hold fragments + states resident, serve steps.

    Fragments are cached per fragmentation token across sessions (LRU,
    bounded by ``_WORKER_CACHE_TOKENS``), so a pool worker that recently
    served a graph skips the re-ship entirely; CSR snapshots are rebuilt
    lazily on this side of the pipe (they are dropped from the
    fragment's pickled form).

    ``heartbeat`` is a shared ``multiprocessing.Value('d')`` this worker
    keeps stamped with ``time.monotonic()`` from a daemon thread; the
    coordinator reads it to distinguish *slow* (still beating) from
    *hung* (beats stopped) while waiting on a reply.
    """
    channel = _Channel(conn)
    hb_pause = threading.Event()
    if heartbeat is not None:
        def _beat():
            while True:
                if not hb_pause.is_set():
                    heartbeat.value = time.monotonic()
                time.sleep(_HEARTBEAT_INTERVAL_S)
        threading.Thread(target=_beat, daemon=True,
                         name="repro-heartbeat").start()
    program = query = None
    fragments: Dict[int, Any] = {}
    states: Dict[int, Any] = {}
    frag_cache: Dict[Any, Dict[int, Any]] = {}
    build_base: Dict[int, int] = {}
    # (token_id, fid) -> mapped shared segment backing that fragment's
    # CSR views; kept pinned for as long as the fragment could be served
    # from cache (dropping the reference unmaps, and unlinked segments
    # free their pages only once every mapping is gone)
    seg_keep: Dict[Tuple[int, int], Any] = {}
    # set between an "init" whose attaches partially failed and the
    # coordinator's follow-up "ship" of the failed fragments
    pending: Optional[Tuple[Any, List[int]]] = None

    def _finalize(token, fids):
        nonlocal fragments, states, build_base
        cache = frag_cache[token]
        fragments = {fid: cache[fid] for fid in fids}
        states = {}
        build_base = {fid: frag.csr_builds
                      for fid, frag in fragments.items()}

    def _drop_dead_pins():
        live_tids = {t[0] for t in frag_cache}
        for key in [k for k in seg_keep if k[0] not in live_tids]:
            del seg_keep[key]

    while True:
        try:
            msg = channel.recv()
        except (EOFError, OSError):
            break
        try:
            kind = msg[0]
            if kind == "init":
                (token, program, query, ship_blob, reuse_fids,
                 base_token, replay_blob, descriptors, patched_fids,
                 shm_fault, want_trace) = msg[1:]
                # tracing: worker-side setup measurements shipped back
                # by value as (name, duration_s, tags) tuples
                wspans: List[Tuple[str, float, Dict]] = []
                # fragment and replay payloads arrive pre-pickled (the
                # coordinator sizes them once for byte accounting)
                t0 = time.perf_counter()
                shipped = pickle.loads(ship_blob) if ship_blob else {}
                if want_trace and ship_blob:
                    wspans.append(("fragment.load",
                                   time.perf_counter() - t0,
                                   {"fragments": len(shipped)}))
                replay = pickle.loads(replay_blob) if replay_blob else {}
                patched = set(patched_fids or ())
                if base_token is not None and base_token in frag_cache:
                    # Cached copies of an older version: replay the
                    # logged per-fragment deltas to bring them current,
                    # then re-key the whole entry under the new token.
                    # Transition order mirrors the coordinator's cache
                    # mirror exactly.
                    frag_cache[token] = frag_cache.pop(base_token)
                cache = frag_cache.setdefault(token, {})
                for fid, deltas in (replay or {}).items():
                    frag = cache.get(fid)
                    if frag is not None:
                        # the coordinator vouches (via patched_fids)
                        # that this fragment's mapped arrays already
                        # hold the post-delta values — keep the
                        # zero-copy CSR instead of invalidating it
                        keep = fid in patched
                        t0 = time.perf_counter()
                        for delta in deltas:
                            delta.replay(frag, keep_csr=keep)
                        if want_trace:
                            wspans.append(("delta.replay",
                                           time.perf_counter() - t0,
                                           {"fid": fid,
                                            "deltas": len(deltas)}))
                        if not keep:
                            seg_keep.pop((token[0], fid), None)
                # shared-memory attaches: map each published segment and
                # wrap zero-copy CSR views; any failure falls back to a
                # coordinator re-ship of that fragment
                failed: List[int] = []
                for fid, desc in (descriptors or {}).items():
                    timings = {} if want_trace else None
                    try:
                        if shm_fault is not None:
                            raise OSError(
                                "injected exec.shm.attach fault")
                        frag, seg = shm.attach_fragment(desc,
                                                        timings=timings)
                    except Exception:
                        failed.append(fid)
                        cache.pop(fid, None)
                        seg_keep.pop((token[0], fid), None)
                    else:
                        cache[fid] = frag
                        seg_keep[(token[0], fid)] = seg
                        if want_trace:
                            wspans.append(("shm.attach",
                                           timings.get("attach_s", 0.0),
                                           {"fid": fid}))
                            wspans.append(("csr.install",
                                           timings.get("install_s", 0.0),
                                           {"fid": fid}))
                cache.update(shipped)
                if _evict_cached(frag_cache, token):
                    _drop_dead_pins()
                want = (list(shipped) + list(reuse_fids)
                        + [f for f in (descriptors or {})
                           if f not in failed])
                if failed:
                    # hold finalization until the pickle fallback lands
                    fragments = {}
                    pending = (token, want)
                else:
                    pending = None
                    _finalize(token, want)
                channel.send(("ok", (failed, wspans)))
            elif kind == "ship":
                # pickle fallback for fragments whose attach failed
                extra = pickle.loads(msg[1]) if msg[1] else {}
                token, want = pending
                pending = None
                frag_cache[token].update(extra)
                _finalize(token, want + list(extra))
                channel.send(("ok", None))
            elif kind == "init_states":
                states = {fid: program.init_state(query, frag)
                          for fid, frag in fragments.items()}
                channel.send(("ok", None))
            elif kind == "preprocess":
                for fid, payload in msg[1].items():
                    program.apply_preprocess(query, fragments[fid],
                                             states[fid], payload)
                channel.send(("ok", None))
            elif kind == "step":
                for command in msg[1].values():
                    if command.fault is not None:
                        _apply_worker_fault(command.fault, hb_pause)
                outcomes = {
                    fid: _execute_command(program, query, fragments[fid],
                                          states[fid], command)
                    for fid, command in msg[1].items()}
                channel.send(("ok", outcomes))
            elif kind == "set_states":
                # checkpoint recovery: overwrite this worker's share of
                # the states with the coordinator's restored snapshot
                states.update(msg[1])
                channel.send(("ok", None))
            elif kind == "collect":
                builds = {fid: frag.csr_builds - build_base.get(fid, 0)
                          for fid, frag in fragments.items()}
                build_base = {fid: frag.csr_builds
                              for fid, frag in fragments.items()}
                channel.send(("ok", (states, builds)))
            elif kind == "close":
                channel.send(("ok", None))
                break
            else:
                raise ValueError(f"unknown worker request {kind!r}")
        except BaseException as exc:  # surface to the coordinator
            text = traceback.format_exc()
            try:
                channel.send(("error", exc, text))
            except Exception:
                channel.send(("error",
                              RuntimeError(f"{type(exc).__name__}: {exc}"),
                              text))
    channel.close()


class _WorkerHandle:
    """Coordinator-side view of one pooled worker process."""

    def __init__(self, ctx, index: int):
        parent, child = ctx.Pipe(duplex=True)
        #: last heartbeat the worker stamped (CLOCK_MONOTONIC is
        #: system-wide on the platforms we run on, so parent and child
        #: read the same clock)
        self.heartbeat = ctx.Value("d", time.monotonic())
        self.process = ctx.Process(target=_worker_main,
                                   args=(child, self.heartbeat),
                                   daemon=True,
                                   name=f"repro-worker-{index}")
        self.process.start()
        child.close()
        self.channel = _Channel(parent)
        #: fragmentation token -> fids this worker holds resident
        self.cached: Dict[Any, set] = {}
        #: (token_id, fid) -> segment generation this worker has mapped;
        #: each entry holds one arena refcount, released when the pin is
        #: dropped (mirrors the worker's ``seg_keep``)
        self.shm_attached: Dict[Tuple[int, int], int] = {}
        #: set the moment a pipe error is observed: ``is_alive`` can
        #: race True for a few microseconds after a SIGKILL, and a dead
        #: handle slipping back into the idle pool would poison the
        #: next lease
        self._dead = False

    def request(self, payload: Any) -> Any:
        """One blocking request/reply exchange; re-raises worker errors."""
        self.send(payload)
        return self.receive()

    def send(self, payload: Any) -> None:
        try:
            self.channel.send(payload)
        except UnpicklableProgramError:
            raise
        except (BrokenPipeError, OSError) as exc:
            self._dead = True
            raise WorkerProcessDied(
                f"process-backend worker {self.process.name} died "
                f"(exitcode={self.process.exitcode})") from exc

    def receive(self, *, deadline: Optional[float] = None,
                hang_timeout: Optional[float] = None,
                cancel: Optional[threading.Event] = None) -> Any:
        """Wait for the worker's reply.

        With no watch parameters this blocks indefinitely (seed
        behavior).  Otherwise the reply pipe is polled and, between
        polls: a set ``cancel`` event abandons the exchange
        (:exc:`~repro.resilience.errors.QueryCancelled`); a heartbeat
        older than ``hang_timeout`` declares the worker hung
        (:exc:`WorkerHung`); a ``time.monotonic()`` past ``deadline``
        raises :exc:`~repro.resilience.errors.DeadlineExceeded`.  In
        all three cases the worker is killed and the handle marked dead
        — a worker mid-compute would otherwise push a stale reply at
        whichever session leases it next.  A reply that is already
        ready is always consumed, even past the deadline.
        """
        if deadline is None and hang_timeout is None and cancel is None:
            return self._receive_blocking()
        while True:
            try:
                ready = self.channel.poll(_RECV_POLL_S)
            except (EOFError, OSError) as exc:
                self._dead = True
                raise WorkerProcessDied(
                    f"process-backend worker {self.process.name} died "
                    f"(exitcode={self.process.exitcode})") from exc
            if ready:
                return self._receive_blocking()
            now = time.monotonic()
            if cancel is not None and cancel.is_set():
                self._abandon()
                raise QueryCancelled(
                    f"query cancelled while worker {self.process.name} "
                    "was mid-superstep; the worker was replaced")
            if (hang_timeout is not None
                    and now - self.heartbeat.value > hang_timeout):
                self._abandon()
                raise WorkerHung(
                    f"process-backend worker {self.process.name} missed "
                    f"heartbeats for {hang_timeout:.3f}s and was killed")
            if deadline is not None and now > deadline:
                self._abandon()
                raise DeadlineExceeded(
                    f"query deadline passed while waiting on worker "
                    f"{self.process.name}; the worker was replaced")

    def _abandon(self) -> None:
        """Kill the worker and mark this handle dead (the exchange it
        owes a reply for will never complete usefully)."""
        self._dead = True
        try:
            self.process.kill()
        except Exception:  # pragma: no cover - already gone
            pass

    def _receive_blocking(self) -> Any:
        try:
            reply = self.channel.recv()
        except (EOFError, OSError) as exc:
            self._dead = True
            raise WorkerProcessDied(
                f"process-backend worker {self.process.name} died "
                f"(exitcode={self.process.exitcode})") from exc
        if reply[0] == "error":
            _tag, exc, text = reply
            raise exc from RuntimeError(
                f"in process-backend worker "
                f"{self.process.name}:\n{text}")
        return reply[1]

    def stop(self) -> None:
        try:
            self.request(("close", None))
        except Exception:
            pass
        self.channel.close()
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=2.0)

    @property
    def alive(self) -> bool:
        return not self._dead and self.process.is_alive()


class _ProcessSession(ExecutorSession):
    """A run leasing workers from a :class:`ProcessBackend` pool.

    Fragments are shipped during :meth:`ProcessBackend.open` (and only
    the ones each worker does not already cache for this fragmentation
    token); afterwards every superstep exchanges just commands and
    outcomes.  States are created and mutated worker-side and pulled back
    exactly once, for Assemble.
    """

    def __init__(self, backend: "ProcessBackend",
                 handles: List[_WorkerHandle],
                 placement: Dict[int, _WorkerHandle],
                 fragmentation, byte_base: int):
        self._backend = backend
        self._handles = handles
        self._placement = placement
        self._fragmentation = fragmentation
        self._closed = False
        self._byte_base = byte_base
        self._account()

    # -- plumbing -------------------------------------------------------
    def _broadcast(self, make_payload, *,
                   deadline: Optional[float] = None,
                   cancel: Optional[threading.Event] = None) -> List[Any]:
        """Send one request to every leased worker, then gather replies.

        Requests are written before any reply is read so the workers
        deserialize and compute concurrently.  Every sent request has its
        reply drained even when one worker errors — an unconsumed reply
        would desynchronize the channel for whichever session leases the
        worker next.  The first error is re-raised after the drain.

        Every receive watches the session's ``hang_timeout`` (hung-worker
        detection applies to any exchange, checkpoint collection
        included); step exchanges additionally thread the query's
        ``deadline`` and ``cancel`` through.  A timed-out/hung/cancelled
        worker was killed by its handle, so its "reply" surfaces as the
        typed error — the drain loop's job is only to keep healthy
        workers' channels synchronized.
        """
        first_error: Optional[BaseException] = None
        sent: List[_WorkerHandle] = []
        for handle in self._handles:
            try:
                handle.send(make_payload(handle))
            except BaseException as exc:
                first_error = exc
                break
            sent.append(handle)
        replies: List[Any] = []
        for handle in sent:
            try:
                replies.append(handle.receive(
                    deadline=deadline, hang_timeout=self.hang_timeout,
                    cancel=cancel))
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
                replies.append(None)
        if first_error is not None:
            raise first_error
        return replies

    def _fids_of(self, handle: _WorkerHandle) -> List[int]:
        return [fid for fid, h in self._placement.items() if h is handle]

    def _account(self) -> None:
        total = sum(h.channel.bytes_sent + h.channel.bytes_received
                    for h in self._handles)
        self.pipe_bytes = total - self._byte_base

    # -- session protocol ----------------------------------------------
    def init_states(self) -> None:
        self._broadcast(lambda handle: ("init_states", None))
        self._account()

    def apply_preprocess(self, payloads: Dict[int, Any]) -> None:
        self._broadcast(lambda handle: ("preprocess", {
            fid: payloads[fid] for fid in self._fids_of(handle)
            if fid in payloads}))
        self._account()

    def step(self, commands: Dict[int, StepCommand], *,
             deadline: Optional[float] = None,
             cancel: Optional[threading.Event] = None,
             ) -> Dict[int, StepOutcome]:
        replies = self._broadcast(lambda handle: ("step", {
            fid: commands[fid] for fid in self._fids_of(handle)
            if fid in commands}), deadline=deadline, cancel=cancel)
        self._account()
        outcomes: Dict[int, StepOutcome] = {}
        for reply in replies:
            outcomes.update(reply)
        return outcomes

    def replace_states(self, states: Dict[int, Any]) -> None:
        """Overwrite worker-resident states (checkpoint recovery): each
        leased worker receives its placed fragments' restored states."""
        self._broadcast(lambda handle: ("set_states", {
            fid: states[fid] for fid in self._fids_of(handle)
            if fid in states}))
        self._account()

    def collect_states(self) -> Dict[int, Any]:
        states: Dict[int, Any] = {}
        for worker_states, builds in self._broadcast(
                lambda handle: ("collect", None)):
            states.update(worker_states)
            # Fold worker-side CSR snapshot builds into the coordinator
            # fragments so service-level CSR metrics stay meaningful.
            for fid, delta in builds.items():
                self._fragmentation[fid].count_remote_csr_builds(delta)
        self._account()
        return states

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._account()
            self._backend._release(self._handles)


class ProcessBackend(ExecutorBackend):
    """Persistent ``multiprocessing`` worker pool.

    Workers are spawned lazily, leased to one session (= one engine run)
    at a time, and returned to the pool afterwards with their fragment
    cache intact — a served graph is shipped to a given worker once, not
    once per query.  Graph mutations bump the fragmentation's cache
    token; on the next lease a worker's stale copies are brought current
    by replaying the fragmentation's logged per-fragment deltas (the
    happy path for churn workloads) and re-shipped in full only when the
    bounded delta log has a gap.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method; ``None`` uses the platform
        default (``fork`` on Linux).  Payloads are explicitly pickled
        through the pipe under every start method, so pickle-safety is
        enforced uniformly.
    max_workers:
        Optional hard cap on pool size (default: grow with demand).
    use_shm:
        ``True`` forces the shared-memory fragment plane, ``False``
        disables it (every fragment is pickled through the pipe),
        ``None`` (default) enables it when the platform supports it
        (see :func:`repro.runtime.shm.shm_available`).
    """

    name = "process"
    inline = False

    def __init__(self, start_method: Optional[str] = None,
                 max_workers: Optional[int] = None,
                 use_shm: Optional[bool] = None):
        import multiprocessing
        self._ctx = multiprocessing.get_context(start_method)
        self._max_workers = max_workers
        self._idle: List[_WorkerHandle] = []
        self._spawned = 0
        self._lock = threading.Lock()
        self._closed = False
        if use_shm is None:
            use_shm = shm.shm_available()
        # the arena LRU mirrors the worker fragment-cache bound so a
        # segment outlives every cache entry that may reference it
        self._arena = (shm.ShmArena(max_tokens=_WORKER_CACHE_TOKENS)
                       if use_shm else None)

    # ------------------------------------------------------------------
    def open(self, program, query, fragmentation, *, num_workers: int,
             failure_injector: Optional[FailureInjector] = None,
             trace=None) -> ExecutorSession:
        if failure_injector is not None:
            raise ValueError(
                "fault injection requires an inline backend "
                "(backend='serial' or 'thread'): the process backend's "
                "worker-resident states have no checkpoint channel")
        fragments = fragmentation.fragments
        token = fragmentation.cache_token
        want = min(max(1, num_workers), max(1, len(fragments)))
        handles = self._acquire(want, token)
        # Channels outlive sessions (the pool is persistent); the session
        # is billed for everything beyond this point, fragment shipping
        # included.
        byte_base = sum(h.channel.bytes_sent + h.channel.bytes_received
                        for h in handles)
        delta_bytes = 0
        full_shipped = 0
        delta_shipped = 0
        fragment_bytes = 0
        shm_fallbacks = 0
        arena = self._arena
        try:
            placement: Dict[int, _WorkerHandle] = {
                frag.fid: handles[i % len(handles)]
                for i, frag in enumerate(fragments)}
            for handle in handles:
                init_span = (trace.child("worker.init",
                                         worker=handle.process.name)
                             if trace is not None else None)
                assigned = {fid for fid, h in placement.items()
                            if h is handle}
                cached = set(handle.cached.get(token, set()))
                base_token = None
                replay: Dict[int, list] = {}
                if not cached:
                    # The worker may hold this fragmentation at an older
                    # version: if the delta log covers the gap for every
                    # fragment it caches, ship the compact per-fragment
                    # deltas for replay instead of whole fragments.
                    older = [t for t in handle.cached
                             if t[0] == token[0] and t[1] < token[1]]
                    if older:
                        candidate = max(older, key=lambda t: t[1])
                        held = set(handle.cached[candidate])
                        chain = fragmentation.replay_chain(
                            candidate[1], token[1], held)
                        if chain is not None:
                            base_token = candidate
                            replay = chain
                            cached = held
                need = sorted(assigned - cached)
                reuse = sorted(assigned & cached)
                # Fragments the worker lacks ride shared memory when a
                # segment can be published; each publish failure counts
                # as one fallback onto the pickle path.
                descriptors: Dict[int, Any] = {}
                ship: Dict[int, Any] = {}
                for fid in need:
                    desc = None
                    if arena is not None:
                        desc = arena.descriptor_for(
                            token[0], token[1], fragmentation[fid])
                        if desc is None:
                            shm_fallbacks += 1
                            _events.emit("shm.fallback", stage="publish",
                                         fid=fid)
                    if desc is not None:
                        descriptors[fid] = desc
                    else:
                        ship[fid] = fragmentation[fid]
                # Replayed fragments whose mapped arrays already hold
                # the post-delta values may keep their zero-copy CSR.
                patched = (arena.keepable_fids(token[0], token[1],
                                               handle.shm_attached, replay)
                           if arena is not None and replay else set())
                # Pickle bulk payloads exactly once: the blobs both
                # cross the pipe and are the byte-accounting figures.
                replay_blob = None
                if replay:
                    replay_blob = pickle.dumps(
                        replay, protocol=pickle.HIGHEST_PROTOCOL)
                    delta_shipped += len(replay)
                    delta_bytes += len(replay_blob)
                ship_blob = None
                if ship:
                    ship_blob = _pickle_payload(ship)
                    fragment_bytes += len(ship_blob)
                shm_fault = (_fault_plane.check("exec.shm.attach")
                             if descriptors else None)
                failed, init_spans = handle.request((
                    "init", token, program, query, ship_blob, reuse,
                    base_token, replay_blob, descriptors,
                    sorted(patched), shm_fault,
                    init_span is not None))
                failed = failed or []
                if init_span is not None:
                    for name, duration_s, tags in init_spans or ():
                        init_span.record(name, duration_s, **tags)
                if failed:
                    # the worker could not map these segments: degrade
                    # to pickle shipping for exactly those fragments
                    shm_fallbacks += len(failed)
                    _events.emit("shm.fallback", stage="attach",
                                 worker=handle.process.name,
                                 fragments=len(failed))
                    blob = _pickle_payload(
                        {fid: fragmentation[fid] for fid in failed})
                    fragment_bytes += len(blob)
                    handle.request(("ship", blob))
                # mirror the worker's cache transitions exactly (re-key,
                # merge, LRU-evict), so the coordinator never assumes a
                # fragment the worker dropped
                if base_token is not None:
                    handle.cached[token] = handle.cached.pop(base_token)
                entry = handle.cached.setdefault(token, set())
                handle.cached[token] = entry | assigned
                if _evict_cached(handle.cached, token):
                    self._drop_dead_pins(handle)
                # mirror the worker's segment pins: replayed-without-keep
                # and failed attaches drop a reference, fresh attaches
                # take one (republished generations carry their refs)
                if arena is not None:
                    failed_set = set(failed)
                    for fid in replay:
                        key = (token[0], fid)
                        if (fid not in patched
                                and key in handle.shm_attached):
                            del handle.shm_attached[key]
                            arena.release(*key)
                    for fid in descriptors:
                        key = (token[0], fid)
                        if fid in failed_set:
                            if handle.shm_attached.pop(key, None) is not None:
                                arena.release(*key)
                        else:
                            if key not in handle.shm_attached:
                                arena.retain(*key)
                            handle.shm_attached[key] = \
                                descriptors[fid].generation
                full_shipped += len(need)
                if init_span is not None:
                    init_span.finish()
        except BaseException:
            self._release(handles)
            raise
        session = _ProcessSession(self, handles, placement, fragmentation,
                                  byte_base)
        session.delta_bytes_shipped = delta_bytes
        session.fragments_shipped = full_shipped
        session.fragments_delta_shipped = delta_shipped
        session.fragment_bytes_shipped = fragment_bytes
        session.shm_fallbacks = shm_fallbacks
        return session

    def run_tasks(self, thunks: Sequence[Callable[[], Any]],
                  num_workers: int) -> List[Any]:
        raise TypeError(
            "the process backend cannot execute in-process task closures "
            "(they cannot cross the process boundary); baseline engines "
            "and SimulatedCluster.run_superstep need backend='serial' or "
            "'thread'")

    # ------------------------------------------------------------------
    def _drop_dead_pins(self, handle: _WorkerHandle) -> None:
        """Release arena references for segment pins whose fragmentation
        no longer appears anywhere in the handle's cache mirror (the
        worker dropped its mappings with the evicted cache entries)."""
        live_tids = {t[0] for t in handle.cached}
        for key in [k for k in handle.shm_attached
                    if k[0] not in live_tids]:
            del handle.shm_attached[key]
            if self._arena is not None:
                self._arena.release(*key)

    def _release_handle_refs(self, handle: _WorkerHandle) -> None:
        """A worker is gone (dead or stopped): its mappings are gone
        with it, so every arena reference it held is returned."""
        pins, handle.shm_attached = handle.shm_attached, {}
        if self._arena is not None:
            for tid, fid in pins:
                self._arena.release(tid, fid)

    def _acquire(self, count: int, token) -> List[_WorkerHandle]:
        with self._lock:
            if self._closed:
                raise RuntimeError("process backend is closed")
            # prefer workers that already hold fragments for this exact
            # token, then workers holding an older version of the same
            # fragmentation (their copies can be brought current by
            # compact delta replay instead of a full re-ship)
            self._idle.sort(key=lambda h: (
                token not in h.cached,
                not any(t[0] == token[0] for t in h.cached)))
            handles: List[_WorkerHandle] = []
            while self._idle and len(handles) < count:
                handle = self._idle.pop(0)
                if handle.alive:
                    handles.append(handle)
                else:
                    self._spawned -= 1
                    self._release_handle_refs(handle)
            while len(handles) < count:
                if (self._max_workers is not None
                        and self._spawned >= self._max_workers):
                    break
                handles.append(_WorkerHandle(self._ctx, self._spawned))
                self._spawned += 1
            if not handles:
                raise RuntimeError(
                    "process backend has no workers available "
                    f"(max_workers={self._max_workers})")
            return handles

    def _release(self, handles: List[_WorkerHandle]) -> None:
        with self._lock:
            if self._closed:
                for handle in handles:
                    handle.stop()
                    self._release_handle_refs(handle)
                return
            for handle in handles:
                if handle.alive:
                    self._idle.append(handle)
                else:
                    self._spawned -= 1
                    self._release_handle_refs(handle)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            handles, self._idle = self._idle, []
        for handle in handles:
            handle.stop()
            self._release_handle_refs(handle)
        if self._arena is not None:
            self._arena.close()

    def shm_stats(self) -> Tuple[int, int]:
        """(active segments, mapped bytes) owned by this backend's
        shared-memory arena; ``(0, 0)`` when the plane is disabled."""
        return self._arena.stats() if self._arena is not None else (0, 0)

    @property
    def pool_size(self) -> int:
        """Workers currently alive (leased + idle)."""
        with self._lock:
            return self._spawned

    def __repr__(self) -> str:
        return (f"ProcessBackend(workers={self.pool_size}, "
                f"idle={len(self._idle)})")


# ---------------------------------------------------------------------------
# Named backend registry
# ---------------------------------------------------------------------------
_ALIASES = {
    "serial": "serial",
    "sync": "serial",
    "thread": "thread",
    "threads": "thread",
    "process": "process",
    "processes": "process",
    "mp": "process",
}

_FACTORIES = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}

_shared: Dict[str, ExecutorBackend] = {}
_shared_lock = threading.Lock()


def available_backends() -> List[str]:
    """Canonical backend names accepted by ``resolve_backend``."""
    return sorted(_FACTORIES)


def resolve_backend(spec: Union[str, ExecutorBackend, None],
                    ) -> ExecutorBackend:
    """Turn a backend spec (name, instance or ``None``) into a backend.

    Named lookups return one shared instance per canonical name — every
    engine asking for ``"process"`` leases workers from the same warm
    pool.  ``None`` falls back to the ``REPRO_BACKEND`` environment
    variable, then to ``"serial"``.
    """
    if isinstance(spec, ExecutorBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or "serial"
    if not isinstance(spec, str):
        raise TypeError(f"backend must be a name or an ExecutorBackend "
                        f"instance, got {spec!r}")
    canonical = _ALIASES.get(spec.strip().lower())
    if canonical is None:
        raise ValueError(f"unknown backend {spec!r}; "
                         f"available: {available_backends()}")
    with _shared_lock:
        backend = _shared.get(canonical)
        if backend is None or getattr(backend, "_closed", False):
            # a closed shared pool (e.g. a benchmark tearing down its
            # workers) is replaced by a fresh instance on next lookup
            backend = _shared[canonical] = _FACTORIES[canonical]()
        return backend


@atexit.register
def _shutdown_shared_backends() -> None:  # pragma: no cover - exit path
    with _shared_lock:
        backends = list(_shared.values())
        _shared.clear()
    for backend in backends:
        try:
            backend.close()
        except Exception:
            pass
