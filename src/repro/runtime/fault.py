"""Fault injection and recovery (paper Section 6, "Fault tolerance").

GRAPE reserves an *arbitrator* worker that heart-beats every worker and the
coordinator; on a worker failure the arbitrator transfers the failed
worker's tasks elsewhere, and a standby coordinator takes over on
coordinator failure.

In the simulation:

* :class:`FailureInjector` schedules deterministic worker failures
  (``(worker, superstep)`` pairs, or a seeded random failure rate);
* :exc:`WorkerFailure` is raised by the cluster when an injected failure
  fires;
* :class:`Arbitrator` implements the recovery policy used by the GRAPE
  engine: it keeps per-fragment state checkpoints and, on failure,
  restores the failed fragment's state so the superstep can be re-run
  (simulating the task transfer to a healthy worker).

The arbitrator has two checkpoint modes.  The default keeps deep copies
in memory — enough for *injected* failures, where the coordinator
process survives.  Passing ``checkpoint_dir`` switches to **disk
checkpoints** backed by the durable store's layout
(:meth:`~repro.store.catalog.GraphStore.checkpoint_dir`): each
checkpoint is pickled to a per-run file and atomically renamed into
place, so the state a ``kill -9``'d process-backend worker held can be
restored into a fresh worker; the file is discarded when its run ends.
"""

from __future__ import annotations

import copy
import os
import pickle
import random
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

__all__ = ["WorkerFailure", "FailureInjector", "Arbitrator"]


class WorkerFailure(RuntimeError):
    """A simulated worker crash during a superstep."""

    def __init__(self, worker: int, superstep: int):
        super().__init__(f"worker {worker} failed at superstep {superstep}")
        self.worker = worker
        self.superstep = superstep


class FailureInjector:
    """Deterministic or randomized failure schedule.

    Parameters
    ----------
    planned:
        Explicit ``(worker, superstep)`` failures.  Each fires exactly once:
        after a failure is consumed the (recovered) worker runs normally.
    rate:
        Optional per-(worker, superstep) random failure probability.
    max_failures:
        Safety cap on total injected failures (default 10) so randomized
        schedules cannot livelock a run.
    """

    def __init__(self, planned: Optional[List[Tuple[int, int]]] = None,
                 rate: float = 0.0, seed: int = 0, max_failures: int = 10):
        self._planned: Set[Tuple[int, int]] = set(planned or [])
        self._rate = rate
        self._rng = random.Random(seed)
        self._max_failures = max_failures
        self.fired: List[Tuple[int, int]] = []

    def should_fail(self, worker: int, superstep: int) -> bool:
        if len(self.fired) >= self._max_failures:
            return False
        key = (worker, superstep)
        if key in self._planned:
            self._planned.discard(key)
            self.fired.append(key)
            return True
        if self._rate > 0.0 and self._rng.random() < self._rate:
            self.fired.append(key)
            return True
        return False


class Arbitrator:
    """Checkpoint/restore recovery used by the GRAPE engine.

    The engine checkpoints every fragment's mutable state at the end of each
    successful superstep; when a :exc:`WorkerFailure` surfaces, the engine
    asks the arbitrator for the last consistent snapshot and replays the
    superstep (GRAPE's "transfer its computation tasks to another worker").

    Parameters
    ----------
    checkpoint_dir:
        ``None`` (default) keeps checkpoints as in-memory deep copies.
        A directory path enables the disk mode: every checkpoint is
        pickled to a file **unique to this arbitrator instance** (so
        concurrent runs sharing one directory can never clobber — or
        restore — each other's checkpoints) via an atomic temp-file
        rename, so a crash mid-write leaves the previous checkpoint
        intact — the invariant the process-backend kill-recovery path
        relies on.  Disk mode requires picklable fragment states (the
        process backend already enforces that contract).  The engine
        discards the file when its run ends (:meth:`discard`), so a
        long-lived checkpoint directory does not accumulate debris —
        and because a coordinator crash can still leak its file,
        opening the directory garbage-collects any checkpoint whose
        owning pid (embedded in the file name) no longer exists
        (``stale_discarded`` counts them).
    """

    #: disk checkpoint file names: checkpoint-<owner pid>-<nonce>.ckpt
    _CKPT_RE = re.compile(r"^checkpoint-(\d+)-[0-9a-f]+\.ckpt$")

    def __init__(self, checkpoint_dir: Union[str, Path, None] = None):
        self._snapshots: Dict[int, Any] = {}
        self._dir: Optional[Path] = None
        self.checkpoints_written = 0
        self.recoveries = 0
        self.stale_discarded = 0
        if checkpoint_dir is not None:
            self._dir = Path(checkpoint_dir)
            self._dir.mkdir(parents=True, exist_ok=True)
            self._filename = (f"checkpoint-{os.getpid()}-"
                              f"{os.urandom(4).hex()}.ckpt")
            self.stale_discarded = self._gc_stale()

    def _gc_stale(self) -> int:
        """Remove checkpoint files whose owning process is gone.

        A coordinator that crashes between :meth:`checkpoint` and
        :meth:`discard` leaks its file; every file name embeds the
        owner's pid, so on startup any file whose pid no longer exists
        is debris and is unlinked.  Files of live processes (including
        our own pid's other instances) are left alone — they may still
        be restored from.  Returns the number of files removed.
        """
        removed = 0
        for entry in self._dir.glob("checkpoint-*.ckpt"):
            match = self._CKPT_RE.match(entry.name)
            if match is None:
                continue
            pid = int(match.group(1))
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
            except (PermissionError, OSError):
                # pid exists (owned by someone else) — not stale
                continue
        return removed

    @property
    def checkpoint_path(self) -> Optional[Path]:
        """Where this instance's disk checkpoints land (``None`` in
        memory mode)."""
        return self._dir / self._filename if self._dir else None

    def checkpoint(self, fragment_states: Dict[int, Any]) -> None:
        """Store a consistent copy of every fragment's state.

        In-memory mode deep-copies; disk mode pickles to the checkpoint
        file atomically (the pickle round trip *is* the copy).
        """
        if self._dir is None:
            self._snapshots = {fid: copy.deepcopy(state)
                               for fid, state in fragment_states.items()}
        else:
            from repro.ioutil import atomic_write_bytes
            atomic_write_bytes(
                self.checkpoint_path,
                pickle.dumps(fragment_states,
                             protocol=pickle.HIGHEST_PROTOCOL))
        self.checkpoints_written += 1

    def restore(self) -> Dict[int, Any]:
        """Return the last consistent snapshot (copied back out, so the
        caller may mutate it freely)."""
        self.recoveries += 1
        if self._dir is None:
            return {fid: copy.deepcopy(state)
                    for fid, state in self._snapshots.items()}
        with open(self.checkpoint_path, "rb") as fh:
            return pickle.load(fh)

    @property
    def has_checkpoint(self) -> bool:
        if self._dir is None:
            return bool(self._snapshots)
        return self.checkpoint_path.is_file()

    def discard(self) -> None:
        """Delete this instance's checkpoint (called when the run that
        owned it ends — successfully or not — so shared checkpoint
        directories stay clean)."""
        self._snapshots = {}
        if self._dir is not None:
            try:
                os.unlink(self.checkpoint_path)
            except OSError:
                pass
