"""Fault injection and recovery (paper Section 6, "Fault tolerance").

GRAPE reserves an *arbitrator* worker that heart-beats every worker and the
coordinator; on a worker failure the arbitrator transfers the failed
worker's tasks elsewhere, and a standby coordinator takes over on
coordinator failure.

In the simulation:

* :class:`FailureInjector` schedules deterministic worker failures
  (``(worker, superstep)`` pairs, or a seeded random failure rate);
* :exc:`WorkerFailure` is raised by the cluster when an injected failure
  fires;
* :class:`Arbitrator` implements the recovery policy used by the GRAPE
  engine: it keeps per-fragment state checkpoints and, on failure,
  restores the failed fragment's state so the superstep can be re-run
  (simulating the task transfer to a healthy worker).
"""

from __future__ import annotations

import copy
import random
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = ["WorkerFailure", "FailureInjector", "Arbitrator"]


class WorkerFailure(RuntimeError):
    """A simulated worker crash during a superstep."""

    def __init__(self, worker: int, superstep: int):
        super().__init__(f"worker {worker} failed at superstep {superstep}")
        self.worker = worker
        self.superstep = superstep


class FailureInjector:
    """Deterministic or randomized failure schedule.

    Parameters
    ----------
    planned:
        Explicit ``(worker, superstep)`` failures.  Each fires exactly once:
        after a failure is consumed the (recovered) worker runs normally.
    rate:
        Optional per-(worker, superstep) random failure probability.
    max_failures:
        Safety cap on total injected failures (default 10) so randomized
        schedules cannot livelock a run.
    """

    def __init__(self, planned: Optional[List[Tuple[int, int]]] = None,
                 rate: float = 0.0, seed: int = 0, max_failures: int = 10):
        self._planned: Set[Tuple[int, int]] = set(planned or [])
        self._rate = rate
        self._rng = random.Random(seed)
        self._max_failures = max_failures
        self.fired: List[Tuple[int, int]] = []

    def should_fail(self, worker: int, superstep: int) -> bool:
        if len(self.fired) >= self._max_failures:
            return False
        key = (worker, superstep)
        if key in self._planned:
            self._planned.discard(key)
            self.fired.append(key)
            return True
        if self._rate > 0.0 and self._rng.random() < self._rate:
            self.fired.append(key)
            return True
        return False


class Arbitrator:
    """Checkpoint/restore recovery used by the GRAPE engine.

    The engine checkpoints every fragment's mutable state at the end of each
    successful superstep; when a :exc:`WorkerFailure` surfaces, the engine
    asks the arbitrator for the last consistent snapshot and replays the
    superstep (GRAPE's "transfer its computation tasks to another worker").
    """

    def __init__(self):
        self._snapshots: Dict[int, Any] = {}
        self.recoveries = 0

    def checkpoint(self, fragment_states: Dict[int, Any]) -> None:
        """Store a deep copy of every fragment's state."""
        self._snapshots = {fid: copy.deepcopy(state)
                           for fid, state in fragment_states.items()}

    def restore(self) -> Dict[int, Any]:
        """Return the last consistent snapshot (deep-copied back out)."""
        self.recoveries += 1
        return {fid: copy.deepcopy(state)
                for fid, state in self._snapshots.items()}

    @property
    def has_checkpoint(self) -> bool:
        return bool(self._snapshots)
