"""Zero-copy shared-memory fragment plane for the process backend.

The paper's parallel model has workers hold their fragments locally and
exchange only border updates; shipping whole pickled fragments through
pipes violated that on every cold pool.  This module lets the
coordinator *publish* a fragment once — its CSR arrays plus a pickled
copy of the dict-graph state in one named segment — and ship only a
:class:`SegmentDescriptor` (a few hundred bytes) per fragment.  Workers
attach the segment and map the arrays in place: fragment bytes on the
pipe drop to near zero and the worker-side CSR rebuild disappears.

Layout of a segment (array offsets 64-byte aligned)::

    indptr | indices | weights | rev_indptr | rev_indices | rev_weights
           | meta (pickled Fragment: fid, dict graph, owned/inner/outer)

Providers: on Linux segments are plain files in ``/dev/shm``
(``repro-shm-<pid>-…``) — the same tmpfs the channel's >1MB payload
spill uses — because ``multiprocessing.shared_memory``'s resource
tracker unlinks attached segments behind long-lived pools.  The names
carry the publishing PID so :func:`sweep_stale` can reclaim segments
whose owner died without unlinking (the same discipline as the
Arbitrator's checkpoint GC).  Where ``/dev/shm`` is unavailable,
``multiprocessing.shared_memory`` is the fallback provider.  Set
``REPRO_SHM=0`` to disable the plane entirely (every caller degrades to
the pickle shipping path).

Lifecycle is owned by :class:`ShmArena` (one per ``ProcessBackend``):
entries are keyed by ``(token_id, fid)``, re-published when a
structural delta makes the arrays stale, patched in place for
weight-only deltas, reference-counted against worker cache mirrors, and
unlinked on token retirement, LRU eviction, arena close and interpreter
exit.  Unlinking removes only the *name* — existing worker mappings
stay valid until the last view is dropped (POSIX semantics), so eager
unlink is always safe.
"""

from __future__ import annotations

import atexit
import itertools
import mmap
import os
import pickle
import threading
import time
import weakref
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["SegmentDescriptor", "ShmArena", "attach_fragment",
           "forget_token", "global_stats", "invalidate_token",
           "notify_delta", "provider", "shm_available", "sweep_stale"]

#: every segment name starts with this prefix followed by the publishing
#: PID — the stale sweep parses the PID back out to find orphans
_SEG_PREFIX = "repro-shm-"
_ENV_VAR = "REPRO_SHM"
_DEFAULT_DIR = "/dev/shm"
_counter = itertools.count(1)


def _segment_name(fid: int) -> str:
    return f"{_SEG_PREFIX}{os.getpid()}-{next(_counter):x}-f{fid}"


def _owner_pid(name: str) -> Optional[int]:
    """PID encoded in a segment name, or None if it isn't one of ours."""
    if not name.startswith(_SEG_PREFIX):
        return None
    head = name[len(_SEG_PREFIX):].split("-", 1)[0]
    return int(head) if head.isdigit() else None


# ---------------------------------------------------------------------------
# Providers
# ---------------------------------------------------------------------------
class _Segment:
    """A mapped segment: named, with a buffer.  The mapping object is
    pinned here (and transitively by every numpy view built over
    ``buf``); it is torn down by GC, never explicitly — closing a mmap
    with exported views raises ``BufferError``."""

    __slots__ = ("name", "buf", "_keepalive")

    def __init__(self, name: str, buf, keepalive) -> None:
        self.name = name
        self.buf = buf
        self._keepalive = keepalive


class _FileProvider:
    """Named files on a tmpfs (``/dev/shm``), mapped with ``mmap``.

    The primary provider on Linux: attach-side mappings are
    ``PROT_READ`` (true read-only views) and nothing registers with the
    multiprocessing resource tracker, so a long-lived pool can outlive
    the publishing coordinator's helper processes without spurious
    unlinks."""

    kind = "file"

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def create(self, name: str, size: int) -> _Segment:
        fd = os.open(self._path(name),
                     os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
        try:
            os.ftruncate(fd, size)
            mapping = mmap.mmap(fd, size)
        finally:
            os.close(fd)
        return _Segment(name, memoryview(mapping), mapping)

    def attach(self, name: str, size: int) -> _Segment:
        fd = os.open(self._path(name), os.O_RDONLY)
        try:
            actual = os.fstat(fd).st_size
            if actual < size:
                raise OSError(f"segment {name} truncated: "
                              f"{actual} < {size} bytes")
            mapping = mmap.mmap(fd, size, prot=mmap.PROT_READ)
        finally:
            os.close(fd)
        return _Segment(name, memoryview(mapping), mapping)

    def unlink(self, name: str) -> None:
        try:
            os.unlink(self._path(name))
        except OSError:
            pass

    def segments(self) -> List[str]:
        try:
            entries = os.listdir(self.directory)
        except OSError:
            return []
        return [e for e in entries if e.startswith(_SEG_PREFIX)]


class _SharedMemoryProvider:
    """``multiprocessing.shared_memory`` fallback for platforms without
    a writable ``/dev/shm``.  Attached views are read-write (POSIX shm
    has no per-mapping protection here) and orphan listing is
    unavailable, so :func:`sweep_stale` is a no-op under it."""

    kind = "shared_memory"

    def create(self, name: str, size: int) -> _Segment:
        from multiprocessing import shared_memory
        seg = shared_memory.SharedMemory(name=name, create=True, size=size)
        return _Segment(name, seg.buf, seg)

    def attach(self, name: str, size: int) -> _Segment:
        from multiprocessing import shared_memory
        seg = shared_memory.SharedMemory(name=name)
        if seg.buf.nbytes < size:
            raise OSError(f"segment {name} truncated: "
                          f"{seg.buf.nbytes} < {size} bytes")
        return _Segment(name, seg.buf, seg)

    def unlink(self, name: str) -> None:
        from multiprocessing import shared_memory
        try:
            seg = shared_memory.SharedMemory(name=name)
        except OSError:
            return
        try:
            seg.unlink()
        finally:
            seg.close()

    def segments(self) -> List[str]:  # pragma: no cover - no listing API
        return []


_provider_lock = threading.Lock()
_provider_box: List[Any] = []


def _make_provider():
    if os.environ.get(_ENV_VAR, "").strip().lower() in ("0", "off", "false"):
        return None
    if os.path.isdir(_DEFAULT_DIR) and os.access(_DEFAULT_DIR, os.W_OK):
        return _FileProvider(_DEFAULT_DIR)
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except Exception:  # pragma: no cover - crippled platform
        return None
    return _SharedMemoryProvider()


def provider():
    """The process-wide segment provider (None when shm is disabled or
    unavailable — every caller then uses the pickle shipping path)."""
    with _provider_lock:
        if not _provider_box:
            _provider_box.append(_make_provider())
        return _provider_box[0]


def shm_available() -> bool:
    return provider() is not None


# ---------------------------------------------------------------------------
# Publish / attach
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SegmentDescriptor:
    """Everything a worker needs to map a published fragment: the
    segment name, its total size, the array layout
    (``(field, dtype, count, offset)`` entries plus a trailing ``meta``
    entry for the pickled fragment), and identity/version bookkeeping.
    A descriptor is a few hundred bytes — this is what crosses the pipe
    instead of the fragment."""

    name: str
    nbytes: int
    layout: Tuple[Tuple[str, str, int, int], ...]
    n: int
    directed: bool
    token_id: int
    fid: int
    version: int
    generation: int


def publish_fragment(prov, token_id: int, version: int, generation: int,
                     frag, csr) -> Tuple[_Segment, SegmentDescriptor]:
    """Write one fragment — CSR arrays + pickled dict-graph state — into
    a fresh named segment.  Raises ``OSError`` on provider failure (the
    caller degrades to pickle shipping)."""
    meta = pickle.dumps(frag, protocol=pickle.HIGHEST_PROTOCOL)
    meta_off = csr.shared_nbytes()
    nbytes = meta_off + len(meta)
    seg = prov.create(_segment_name(frag.fid), max(nbytes, 1))
    layout = csr.to_shared(seg.buf)
    seg.buf[meta_off:meta_off + len(meta)] = meta
    layout.append(("meta", "|u1", len(meta), meta_off))
    desc = SegmentDescriptor(name=seg.name, nbytes=nbytes,
                             layout=tuple(layout), n=csr.n,
                             directed=csr.directed, token_id=token_id,
                             fid=frag.fid, version=version,
                             generation=generation)
    return seg, desc


def attach_fragment(desc: SegmentDescriptor, timings=None):
    """Map a published fragment (worker side): unpickle the dict-graph
    state from the segment's meta region and install zero-copy CSR views
    over its array regions.  Returns ``(fragment, segment)``; the caller
    must pin the segment for as long as the views may be used.

    ``timings``, when a dict, receives ``attach_s`` (map + meta
    unpickle) and ``install_s`` (CSR view construction + install) for
    the telemetry plane's worker-side spans."""
    t0 = time.perf_counter() if timings is not None else 0.0
    prov = provider()
    if prov is None:
        raise OSError("no shared-memory provider available")
    seg = prov.attach(desc.name, desc.nbytes)
    fields = {name: (dtype, count, off)
              for name, dtype, count, off in desc.layout}
    _dt, mcount, moff = fields["meta"]
    frag = pickle.loads(bytes(seg.buf[moff:moff + mcount]))
    if timings is not None:
        t1 = time.perf_counter()
        timings["attach_s"] = t1 - t0
    # Rebuild the identity maps from the dict graph: pickle preserves
    # insertion order, and a descriptor is only ever served for a CSR
    # that is current for the published graph, so the dict order here is
    # the order the arrays were built in.
    node_of = list(frag.graph._succ)
    if len(node_of) != desc.n:
        raise OSError(f"segment {desc.name} node count mismatch: "
                      f"{len(node_of)} != {desc.n}")
    id_of = {v: i for i, v in enumerate(node_of)}
    labels = [frag.graph.node_label(v) for v in node_of]
    csr = CSRGraph.from_shared(seg.buf, desc.layout, n=desc.n,
                               directed=desc.directed, id_of=id_of,
                               node_of=node_of, labels=labels)
    frag.install_csr(csr, shared=True)
    if timings is not None:
        timings["install_s"] = time.perf_counter() - t1
    return frag, seg


def _coordinator_views(seg, desc, csr):
    """Read-only CSR over the coordinator's own (writable) mapping, plus
    the writable per-field arrays used for in-place weight patching."""
    patch: Dict[str, np.ndarray] = {}
    ro: Dict[str, np.ndarray] = {}
    for name, dtype, count, off in desc.layout:
        if name == "meta":
            continue
        arr = np.frombuffer(seg.buf, dtype=dtype, count=count, offset=off)
        patch[name] = arr
        view = arr.view()
        view.flags.writeable = False
        ro[name] = view
    shared = CSRGraph(desc.n, desc.directed, ro["indptr"], ro["indices"],
                      ro["weights"], ro["rev_indptr"], ro["rev_indices"],
                      ro["rev_weights"], csr.id_of, csr.node_of, csr.labels)
    return shared, patch


# ---------------------------------------------------------------------------
# Arena
# ---------------------------------------------------------------------------
class _Entry:
    __slots__ = ("seg", "descriptor", "csr", "patch", "version",
                 "published_version", "generation", "compat_floor",
                 "refs", "stale")

    def __init__(self, seg, descriptor, csr, patch, version,
                 generation, compat_floor, refs) -> None:
        self.seg = seg
        self.descriptor = descriptor
        self.csr = csr
        self.patch = patch
        #: fragmentation version the *arrays* are current for
        self.version = version
        #: fragmentation version the pickled meta region is current for
        #: (falls behind ``version`` after in-place patches — new
        #: attaches then force a republish, existing mappings stay good)
        self.published_version = version
        self.generation = generation
        #: oldest generation whose arrays hold the same values as this
        #: one — a worker mapping any generation >= the floor may keep
        #: its CSR across a weight-only replay
        self.compat_floor = compat_floor
        #: worker cache-mirror entries referencing this segment
        self.refs = refs
        self.stale = False


class ShmArena:
    """Owner of published segments for one coordinator.

    Keyed by ``(token_id, fid)``; bounded to ``max_tokens`` distinct
    fragmentation tokens (mirroring the worker cache LRU) so abandoned
    fragmentations cannot pin segments forever.  Thread-safe."""

    def __init__(self, max_tokens: int = 8) -> None:
        self._provider = provider()
        self._entries: Dict[Tuple[int, int], _Entry] = {}
        #: insertion-ordered token-id recency for the LRU bound
        self._token_order: Dict[int, None] = {}
        self._max_tokens = max_tokens
        self._lock = threading.Lock()
        self._closed = False
        # lifetime counters (benchmarks, tests, leak audits)
        self.publishes = 0
        self.patches = 0
        self.ref_leaks = 0
        if self._provider is not None:
            sweep_stale(self._provider)
        _arenas.add(self)

    # -- publication ---------------------------------------------------
    @property
    def available(self) -> bool:
        return self._provider is not None and not self._closed

    def descriptor_for(self, token_id: int, version: int,
                       frag) -> Optional[SegmentDescriptor]:
        """Descriptor for ``frag`` current at ``version``, publishing or
        republishing as needed.  Returns None when shm is unavailable or
        publication fails — the caller ships the fragment by pickle."""
        if not self.available:
            return None
        key = (token_id, frag.fid)
        with self._lock:
            self._token_order.pop(token_id, None)
            self._token_order[token_id] = None
            entry = self._entries.get(key)
            current = (entry is not None and not entry.stale
                       and entry.version == version)
            if current and entry.published_version == version:
                return entry.descriptor
            generation = entry.generation + 1 if entry is not None else 0
            compat_floor = entry.compat_floor if current else generation
            refs = entry.refs if entry is not None else 0
            if entry is not None:
                self._provider.unlink(entry.descriptor.name)
            csr = frag.csr()
            try:
                seg, desc = publish_fragment(self._provider, token_id,
                                             version, generation, frag, csr)
            except (OSError, ValueError, pickle.PicklingError):
                self._entries.pop(key, None)
                return None
            shared_csr, patch = _coordinator_views(seg, desc, csr)
            self._entries[key] = _Entry(seg, desc, shared_csr, patch,
                                        version, generation, compat_floor,
                                        refs)
            self.publishes += 1
            evict = list(self._token_order)[:-self._max_tokens] \
                if len(self._token_order) > self._max_tokens else []
            for tid in evict:
                self._forget_locked(tid)
        # The coordinator adopts the shared view too: its own fragment
        # now reads the published pages, weight patches are visible on
        # both sides, and the dict->CSR build happens once per publish.
        frag.install_csr(shared_csr, shared=True)
        return desc

    def current_generation(self, token_id: int, version: int,
                           fid: int) -> Optional[int]:
        """Generation serving ``(token_id, fid)`` at ``version``, if the
        entry's arrays are current (used by tests and leak audits)."""
        with self._lock:
            entry = self._entries.get((token_id, fid))
            if entry is None or entry.stale or entry.version != version:
                return None
            return entry.generation

    def keepable_fids(self, token_id: int, version: int,
                      attached: Dict[Tuple[int, int], int],
                      fids: Iterable[int]) -> Set[int]:
        """Which of ``fids`` a worker holding ``attached`` generation
        records may replay *without* dropping its mapped CSR: the
        entry's arrays are current at ``version`` and the worker's
        generation is value-compatible (patched in place to the same
        values)."""
        keep: Set[int] = set()
        with self._lock:
            for fid in fids:
                gen = attached.get((token_id, fid))
                if gen is None:
                    continue
                entry = self._entries.get((token_id, fid))
                if (entry is not None and not entry.stale
                        and entry.version == version
                        and gen >= entry.compat_floor):
                    keep.add(fid)
        return keep

    # -- delta maintenance ---------------------------------------------
    def apply_delta(self, token_id: int, new_version: int,
                    touched: Dict[int, Any]) -> Dict[int, Any]:
        """Advance this arena's entries past one applied update batch.

        Per entry of ``token_id``: untouched fragments stay current at
        the new version; weight-only deltas are patched into the mapped
        arrays in place (both sides see the new weights with no
        republish); border-only deltas keep the arrays but stale the
        meta region; structural deltas stale the entry (lazily
        republished at the next descriptor request).  Returns
        ``{fid: shared_csr}`` for the fragments patched in place — the
        caller keeps those snapshots live instead of invalidating."""
        patched: Dict[int, Any] = {}
        if self._provider is None:
            return patched
        with self._lock:
            for (tid, fid), entry in self._entries.items():
                if tid != token_id or entry.stale:
                    continue
                delta = touched.get(fid)
                if delta is None:
                    entry.version = new_version
                    entry.published_version = new_version
                elif not delta.mutates_graph:
                    # border-set churn only: arrays untouched, pickled
                    # meta stale -> republish before any new attach
                    entry.version = new_version
                elif getattr(delta, "weight_only", False) \
                        and self._patch(entry, delta):
                    entry.version = new_version
                    self.patches += 1
                    patched[fid] = entry.csr
                else:
                    entry.stale = True
        return patched

    @staticmethod
    def _patch(entry: _Entry, delta) -> bool:
        """Write a weight-only delta into the mapped arrays.  Returns
        False (caller stales the entry) if any changed edge is missing
        from the published CSR — half-applied writes are then never
        served."""
        csr = entry.csr
        id_of = csr.id_of
        fwd = entry.patch["weights"]
        rev = entry.patch["rev_weights"]
        indptr, indices = csr.indptr, csr.indices
        rev_indptr, rev_indices = csr.rev_indptr, csr.rev_indices
        for u, v, _old, new in delta.weight_changes:
            pairs = [(u, v)]
            if not csr.directed and u != v:
                # the local graph stores both orientations; the delta
                # records the one(s) the owner saw
                pairs.append((v, u))
            for a, b in pairs:
                ai = id_of.get(a)
                bi = id_of.get(b)
                if ai is None or bi is None:
                    return False
                s, e = indptr[ai], indptr[ai + 1]
                hits = np.nonzero(indices[s:e] == bi)[0]
                if hits.size == 0:
                    return False
                fwd[s + hits] = new
                s, e = rev_indptr[bi], rev_indptr[bi + 1]
                hits = np.nonzero(rev_indices[s:e] == ai)[0]
                if hits.size == 0:
                    return False
                rev[s + hits] = new
        return True

    # -- lifecycle -----------------------------------------------------
    def retain(self, token_id: int, fid: int) -> bool:
        with self._lock:
            entry = self._entries.get((token_id, fid))
            if entry is None:
                return False
            entry.refs += 1
            return True

    def release(self, token_id: int, fid: int) -> None:
        with self._lock:
            entry = self._entries.get((token_id, fid))
            if entry is not None and entry.refs > 0:
                entry.refs -= 1

    def invalidate(self, token_id: int) -> None:
        """Stale every entry of a token (out-of-band version bump)."""
        with self._lock:
            for (tid, _fid), entry in self._entries.items():
                if tid == token_id:
                    entry.stale = True

    def _forget_locked(self, token_id: int) -> int:
        released = 0
        for key in [k for k in self._entries if k[0] == token_id]:
            entry = self._entries.pop(key)
            released += entry.refs
            self._provider.unlink(entry.descriptor.name)
        self._token_order.pop(token_id, None)
        return released

    def forget(self, token_id: int) -> int:
        """Unlink and drop every segment of a retired fragmentation
        token.  Returns how many worker references were outstanding
        (normal while the pool is warm — the mappings stay valid)."""
        with self._lock:
            if self._provider is None:
                return 0
            return self._forget_locked(token_id)

    def stats(self) -> Tuple[int, int]:
        """(active segments, mapped bytes) currently owned."""
        with self._lock:
            segs = len(self._entries)
            nbytes = sum(e.descriptor.nbytes for e in self._entries.values())
        return segs, nbytes

    def close(self) -> None:
        """Unlink everything.  References still outstanding here are
        real leaks (the owner released worker mirrors first) and are
        recorded in ``ref_leaks``."""
        with self._lock:
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
            self._token_order.clear()
        for entry in entries:
            self.ref_leaks += entry.refs
            if self._provider is not None:
                self._provider.unlink(entry.descriptor.name)
        _arenas.discard(self)


# ---------------------------------------------------------------------------
# Module registry: one coordinator may own several arenas (one per
# backend instance); fragmentation-level hooks fan out to all of them.
# ---------------------------------------------------------------------------
_arenas: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()


def notify_delta(token_id: int, new_version: int,
                 touched: Dict[int, Any]) -> Dict[int, Any]:
    """Fan an applied update batch out to every live arena; returns the
    union of fragments whose mapped arrays were patched in place."""
    patched: Dict[int, Any] = {}
    for arena in list(_arenas):
        patched.update(arena.apply_delta(token_id, new_version, touched))
    return patched


def invalidate_token(token_id: int) -> None:
    for arena in list(_arenas):
        arena.invalidate(token_id)


def forget_token(token_id: int) -> None:
    for arena in list(_arenas):
        arena.forget(token_id)


def global_stats() -> Tuple[int, int]:
    """(active segments, mapped bytes) across every live arena."""
    segs = 0
    nbytes = 0
    for arena in list(_arenas):
        s, b = arena.stats()
        segs += s
        nbytes += b
    return segs, nbytes


def sweep_stale(prov=None) -> int:
    """Unlink segments whose publishing process is dead (mirrors the
    Arbitrator's stale-checkpoint GC).  Live publishers' segments are
    left alone.  Returns the number of segments removed."""
    prov = prov or provider()
    if prov is None:
        return 0
    removed = 0
    for name in prov.segments():
        pid = _owner_pid(name)
        if pid is None:
            continue
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            prov.unlink(name)
            removed += 1
        except OSError:
            continue  # alive but not ours (EPERM)
    return removed


@atexit.register
def _close_all() -> None:  # pragma: no cover - exit path
    for arena in list(_arenas):
        arena.close()
