"""Message kinds exchanged through the simulated MPI controller.

GRAPE supports two message types (paper Section 3.5):

* **designated** messages, addressed to a specific worker — the engine
  deduces destinations from the fragmentation graph ``G_P``;
* **key-value** pairs, grouped by key at the coordinator — used to simulate
  MapReduce (Theorem 2(2)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

__all__ = ["DesignatedMessage", "KeyValueMessage"]


@dataclass(frozen=True)
class DesignatedMessage:
    """A message from ``src`` worker addressed to ``dest`` worker."""

    src: int
    dest: int
    payload: Any


@dataclass(frozen=True)
class KeyValueMessage:
    """A ``(key, value)`` pair; the coordinator groups by key and assigns
    each key group to a worker (MapReduce shuffle)."""

    src: int
    key: Hashable
    value: Any
