"""Message kinds exchanged through the simulated MPI controller.

GRAPE supports two message types (paper Section 3.5):

* **designated** messages, addressed to a specific worker — the engine
  deduces destinations from the fragmentation graph ``G_P``;
* **key-value** pairs, grouped by key at the coordinator — used to simulate
  MapReduce (Theorem 2(2)).

The coordinator's shuffle assigns each key group to a worker by
:func:`stable_hash`, a process-independent hash: Python's builtin ``hash``
is randomized per process for strings (``PYTHONHASHSEED``), which would
make key routing — and therefore per-worker traffic and compute — vary
between otherwise identical runs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Hashable

__all__ = ["DesignatedMessage", "KeyValueMessage", "stable_hash"]


def stable_hash(key: Hashable) -> int:
    """A 32-bit hash of ``key`` that is stable across processes and runs.

    Covers the key types that appear on the key-value channel and as node
    ids: str, bytes, bool, int, float, and tuples/frozensets thereof.
    Other objects fall back to their ``repr`` — stable as long as the repr
    is (which builtin ``hash`` does not guarantee either).
    """
    if isinstance(key, bytes):
        data = b"b:" + key
    elif isinstance(key, str):
        data = b"s:" + key.encode("utf-8", "backslashreplace")
    elif isinstance(key, bool):
        data = b"B:" + (b"1" if key else b"0")
    elif isinstance(key, int):
        data = b"i:%d" % key
    elif isinstance(key, float):
        data = b"f:" + repr(key).encode("ascii")
    elif isinstance(key, tuple):
        data = b"t:" + b",".join(b"%d" % stable_hash(x) for x in key)
    elif isinstance(key, frozenset):
        data = b"F:" + b",".join(sorted(b"%d" % stable_hash(x) for x in key))
    else:
        data = b"o:" + repr(key).encode("utf-8", "backslashreplace")
    return zlib.crc32(data)


@dataclass(frozen=True)
class DesignatedMessage:
    """A message from ``src`` worker addressed to ``dest`` worker."""

    src: int
    dest: int
    payload: Any


@dataclass(frozen=True)
class KeyValueMessage:
    """A ``(key, value)`` pair; the coordinator groups by key and assigns
    each key group to a worker (MapReduce shuffle)."""

    src: int
    key: Hashable
    value: Any
