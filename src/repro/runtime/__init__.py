"""Simulated distributed runtime: cluster, messages, metrics, faults."""

from repro.runtime.cluster import LoadBalancer, SimulatedCluster
from repro.runtime.executors import (ExecutorBackend, ExecutorSession,
                                     ProcessBackend, SerialBackend,
                                     StepCommand, StepOutcome,
                                     ThreadBackend,
                                     UnpicklableProgramError,
                                     available_backends, resolve_backend)
from repro.runtime.fault import Arbitrator, FailureInjector, WorkerFailure
from repro.runtime.message import DesignatedMessage, KeyValueMessage
from repro.runtime.metrics import (CostModel, ParamSizeCache, RunMetrics,
                                   message_bytes)

__all__ = [
    "SimulatedCluster", "LoadBalancer", "CostModel", "ParamSizeCache",
    "RunMetrics", "message_bytes", "DesignatedMessage", "KeyValueMessage",
    "FailureInjector", "WorkerFailure", "Arbitrator",
    "ExecutorBackend", "ExecutorSession", "SerialBackend", "ThreadBackend",
    "ProcessBackend", "StepCommand", "StepOutcome",
    "UnpicklableProgramError", "available_backends", "resolve_backend",
]
