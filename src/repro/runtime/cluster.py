"""The simulated shared-nothing cluster.

A :class:`SimulatedCluster` plays the role of the paper's ``n`` physical
workers plus MPI controller.  Engines (GRAPE and the baselines) submit one
*task per virtual worker* per superstep; the cluster

* executes every task (serially or on a thread pool), timing each with a
  performance counter,
* maps virtual workers onto physical workers (paper Section 3.1: ``m``
  virtual workers on ``n`` physical workers share memory when ``n < m``),
* folds the timings into :class:`~repro.runtime.metrics.RunMetrics` using
  the BSP cost model: a superstep costs the *max over physical workers* of
  their assigned virtual workers' summed compute time, plus communication.

Fault injection (paper Section 6, "Fault tolerance") is supported through a
:class:`~repro.runtime.fault.FailureInjector` — see that module.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional, Sequence, Union

from repro.runtime.executors import ExecutorBackend, resolve_backend
from repro.runtime.fault import FailureInjector, WorkerFailure
from repro.runtime.metrics import CostModel, RunMetrics, message_bytes

__all__ = ["SimulatedCluster", "LoadBalancer"]


class LoadBalancer:
    """Assign ``m`` virtual workers to ``n`` physical workers.

    The paper's Load Balancer minimizes a bi-criteria objective over
    fragment size and border count; we implement the classic greedy
    longest-processing-time heuristic over per-fragment cost estimates.
    """

    def assign(self, costs: Sequence[float], num_physical: int) -> List[int]:
        """Return ``phys[i]`` = physical worker for virtual worker ``i``."""
        loads = [0.0] * num_physical
        placement = [0] * len(costs)
        order = sorted(range(len(costs)), key=lambda i: -costs[i])
        for i in order:
            target = min(range(num_physical), key=lambda p: loads[p])
            placement[i] = target
            loads[target] += costs[i]
        return placement


class SimulatedCluster:
    """``n`` physical workers with synchronous (BSP) supersteps.

    Parameters
    ----------
    num_workers:
        Number of *physical* workers ``n``.
    cost_model:
        BSP cost parameters; defaults to :class:`CostModel` defaults.
    executor:
        Back-compat spelling of ``backend``: ``"serial"`` (default,
        deterministic) or ``"threads"`` (thread pool).  Thread timing
        still uses per-task perf-counter measurement, so the cost model
        is unaffected.
    backend:
        An :class:`~repro.runtime.executors.ExecutorBackend` name or
        instance executing the per-worker tasks; overrides ``executor``
        when given.  Closure tasks submitted through
        :meth:`run_superstep` require an *inline* backend — the process
        backend only speaks the PIE session protocol driven by
        :class:`~repro.core.engine.GrapeEngine`.
    failure_injector:
        Optional fault-injection plan; tasks raising
        :class:`WorkerFailure` are surfaced to the engine for recovery.
    """

    def __init__(self, num_workers: int, cost_model: Optional[CostModel] = None,
                 executor: str = "serial",
                 failure_injector: Optional[FailureInjector] = None,
                 backend: Union[str, ExecutorBackend, None] = None):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if executor not in ("serial", "threads"):
            raise ValueError(f"unknown executor {executor!r}")
        self.num_workers = num_workers
        self.cost_model = cost_model or CostModel()
        self.executor = executor
        if backend is None:
            backend = "thread" if executor == "threads" else "serial"
        self.backend = resolve_backend(backend)
        self.failure_injector = failure_injector
        self.metrics = RunMetrics(backend=self.backend.name)
        self.balancer = LoadBalancer()
        self._superstep_index = 0

    # ------------------------------------------------------------------
    def reset_metrics(self) -> None:
        self.metrics = RunMetrics(backend=self.backend.name)
        self._superstep_index = 0

    # ------------------------------------------------------------------
    def run_superstep(self, tasks: Sequence[Callable[[], Any]],
                      virtual_costs: Optional[Sequence[float]] = None,
                      bytes_shipped: int = 0,
                      num_messages: int = 0) -> List[Any]:
        """Execute one superstep: one task per virtual worker.

        Returns the task results in order.  ``bytes_shipped`` and
        ``num_messages`` describe the traffic *delivered at the start of*
        this superstep (routed by the coordinator), charged to it per the
        BSP cost formula.

        Raises :class:`WorkerFailure` (after accounting the partial step)
        if the failure injector kills a worker this superstep; the engine
        is expected to recover and retry.
        """
        step = self._superstep_index
        self._superstep_index += 1

        times, results, failure = self._execute(tasks, step)
        self.record_superstep(times, bytes_shipped, num_messages,
                              virtual_costs=virtual_costs,
                              _count_step=False)
        if failure is not None:
            raise failure
        return results

    def record_superstep(self, times: Sequence[float], bytes_shipped: int,
                         num_messages: int,
                         virtual_costs: Optional[Sequence[float]] = None,
                         _count_step: bool = True) -> None:
        """Fold one executed superstep's timings into the metrics.

        Used directly by engines that execute supersteps through an
        :class:`~repro.runtime.executors.ExecutorSession` (where the
        backend, not the cluster, owns execution): ``times`` are the
        per-virtual-worker compute seconds the session reported.
        """
        if _count_step:
            self._superstep_index += 1
        # Fold virtual-worker times into physical-worker times.
        if virtual_costs is None:
            virtual_costs = times
        placement = self.balancer.assign(virtual_costs, self.num_workers)
        physical = [0.0] * self.num_workers
        for i, t in enumerate(times):
            physical[placement[i]] += t
        self.metrics.record_superstep(physical, bytes_shipped, num_messages,
                                      self.cost_model)

    def _execute(self, tasks: Sequence[Callable[[], Any]], step: int):
        times: List[float] = []
        results: List[Any] = []
        failure: Optional[WorkerFailure] = None

        def run_one(i: int, task: Callable[[], Any]):
            if self.failure_injector is not None and \
                    self.failure_injector.should_fail(worker=i, superstep=step):
                return 0.0, None, WorkerFailure(worker=i, superstep=step)
            start = time.perf_counter()
            value = task()
            return time.perf_counter() - start, value, None

        # Delegated to the backend; raises TypeError for non-inline
        # backends, whose workers cannot receive in-process closures.
        outcomes = self.backend.run_tasks(
            [lambda i=i, t=t: run_one(i, t) for i, t in enumerate(tasks)],
            self.num_workers)

        for elapsed, value, fail in outcomes:
            times.append(elapsed)
            results.append(value)
            if fail is not None and failure is None:
                failure = fail
        return times, results, failure

    # ------------------------------------------------------------------
    def account_payload(self, payload: Any) -> int:
        """Measure a payload's wire size (helper for engines)."""
        return message_bytes(payload)

    def __repr__(self) -> str:
        return (f"SimulatedCluster(n={self.num_workers}, "
                f"backend={self.backend.name!r})")
