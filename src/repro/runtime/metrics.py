"""Cost accounting for the simulated cluster.

The paper reports three quantities per run: response time, communication
volume (MB), and superstep counts.  On a real cluster, the response time of
a BSP computation is the sum over supersteps of

    max over workers of local compute time  +  communication  +  sync latency

(the BSP cost ``w + g*h + l`` of Valiant, quoted in paper Section 4.2).
We measure local compute time with a perf counter around *real* executions
of the plugged-in algorithms, measure message volume by serialized size,
and combine them under a configurable :class:`CostModel`.  This reproduces
cluster-shaped results on a single machine without pretending the GIL
allows honest parallel wall-clock speedups.
"""

from __future__ import annotations

import dataclasses
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.obs.registry import TIME_BUCKETS, Histogram

__all__ = ["CostModel", "ParamSizeCache", "RunMetrics", "ServiceMetrics",
           "message_bytes", "STRAGGLER_SKEW"]


def message_bytes(payload: Any) -> int:
    """Serialized size of a message payload, in bytes.

    Uses pickle as a stand-in for the MPI wire format; what matters for the
    reproduction is that relative volumes between systems are faithful.
    """
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


_EMPTY_DICT_BYTES = message_bytes({})
_EMPTY_TUPLE_BYTES = message_bytes(())


class ParamSizeCache:
    """Memoized byte accounting for update-parameter dicts.

    The coordinator charges every changed-parameter report and every
    composed message by serialized size.  Pickling the same
    ``(key, value)`` entries again each superstep — CC broadcasts one
    unchanged ``(v, "cid")`` entry to every holder every round — wastes
    the coordinator's time on serialization, so an engine run carries one
    cache and charges a dict as the empty-dict overhead plus the sum of
    its entries' memoized marginal sizes.

    An entry's marginal size is measured with its variable name
    (``key[1]`` of a ``(node, name)`` parameter key) already in the
    pickle memo, the steady state inside a multi-entry dict where the
    name string is a two-byte memo reference after its first occurrence.

    Documented deviation from ``message_bytes(dict)``: the first
    occurrence of each distinct name per dict is charged the memo-
    reference size instead of the full string, and other cross-entry
    memo sharing is not modeled — in practice within a few percent of the
    monolithic pickle.  Both figures are faithful stand-ins for the wire
    format; what matters is that the accounting is deterministic and
    identical across engine runs of the same workload.  Dicts holding
    unhashable keys or values fall back to monolithic pickling.

    The memo is bounded: long-lived holders (a standing
    :class:`~repro.core.updates.ContinuousQuerySession` keeps one sizer
    for its lifetime) would otherwise accumulate one entry per distinct
    shipped value forever.  On reaching ``max_entries`` the memo is
    cleared — sizes are recomputed identically afterwards, so the
    accounting itself never changes, only the amortization resets.
    """

    __slots__ = ("_sizes", "_max_entries")

    def __init__(self, max_entries: int = 1 << 16):
        self._sizes: Dict[Any, int] = {}
        self._max_entries = max_entries

    def updates_bytes(self, updates: Dict[Any, Any]) -> int:
        """Charged size of one update-parameter dict."""
        total = _EMPTY_DICT_BYTES
        sizes = self._sizes
        try:
            for entry in updates.items():
                size = sizes.get(entry)
                if size is None:
                    if len(sizes) >= self._max_entries:
                        sizes.clear()
                    size = sizes[entry] = self._entry_bytes(*entry)
                total += size
        except TypeError:  # unhashable value somewhere in an entry
            return message_bytes(updates)
        return total

    @staticmethod
    def _entry_bytes(key: Any, value: Any) -> int:
        if isinstance(key, tuple) and len(key) == 2:
            try:
                preamble = message_bytes({key[1]: 0})
                return message_bytes({key[1]: 0, key: value}) - preamble
            except TypeError:  # unhashable name
                pass
        return message_bytes((key, value)) - _EMPTY_TUPLE_BYTES


@dataclass
class CostModel:
    """BSP cost parameters (Valiant's ``g`` and ``l``).

    Attributes
    ----------
    sync_latency_s:
        Fixed cost ``l`` charged per superstep (barrier + scheduling).
        Defaults to 1 ms, a typical LAN barrier.
    seconds_per_byte:
        Inverse bandwidth ``g``; defaults to 1 GB/s.
    """

    sync_latency_s: float = 1e-3
    seconds_per_byte: float = 1e-9

    def superstep_time(self, max_worker_s: float, bytes_shipped: int) -> float:
        return (max_worker_s + self.sync_latency_s
                + bytes_shipped * self.seconds_per_byte)


#: RunMetrics gauges (point-in-time readings, not flows): merge()/absorb()
#: keep the maximum instead of summing
_GAUGE_FIELDS = ("shm_segments_active", "shm_bytes_mapped",
                 "skew_ratio_max")

#: RunMetrics fields merge()/absorb() handle by hand
_SPECIAL_FIELDS = ("backend", "per_superstep")

#: A superstep whose slowest worker ran at >= this multiple of the mean
#: worker time counts as a straggler step (needs >= 2 workers to mean
#: anything).
STRAGGLER_SKEW = 2.0


def _time_hist() -> Histogram:
    return Histogram(TIME_BUCKETS)


def _classify_fields(cls) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Split a metrics dataclass's fields into additive and histogram
    groups by reflection, so merge()/absorb() can never silently drop a
    newly added counter: every field is either special-cased by name,
    declared a gauge, or combined automatically."""
    probe = cls()
    additive, hists = [], []
    for f in dataclasses.fields(cls):
        if f.name in _SPECIAL_FIELDS or f.name in _GAUGE_FIELDS:
            continue
        if isinstance(getattr(probe, f.name), Histogram):
            hists.append(f.name)
        else:
            additive.append(f.name)
    return tuple(additive), tuple(hists)


@dataclass
class RunMetrics:
    """Everything a single engine run reports.

    ``parallel_time_s`` is the simulated cluster response time (the paper's
    "Time (seconds)" axis); ``total_compute_s`` is aggregate CPU work;
    ``comm_bytes`` the paper's "Communication (MB)" axis.

    ``backend``/``wall_clock_s``/``pipe_bytes`` describe the *physical*
    execution: which executor backend ran the supersteps, the real
    wall-clock of the run, and the serialized bytes that actually crossed
    process pipes (0 for in-process backends).  They vary freely between
    backends; the logical quantities above are backend-invariant —
    the differential harness asserts exactly that.

    The update-pipeline counters make the incremental-vs-recompute split
    observable: ``deltas_applied`` counts applied (non-no-op) update
    batches on a standing query, partitioned into
    ``incremental_maintained`` fast-path folds and ``fallback_reruns``
    recomputes; ``delta_bytes_shipped`` / ``fragments_delta_shipped``
    vs ``fragments_shipped`` show whether process workers were brought
    current by compact delta replay or by full fragment re-ships.
    """

    supersteps: int = 0
    parallel_time_s: float = 0.0
    total_compute_s: float = 0.0
    comm_bytes: int = 0
    comm_messages: int = 0
    backend: str = "serial"
    wall_clock_s: float = 0.0
    pipe_bytes: int = 0
    #: update batches folded into this run's standing answer
    deltas_applied: int = 0
    incremental_maintained: int = 0
    fallback_reruns: int = 0
    #: non-monotone batches served by the bounded delete-aware path
    #: (affected-region reset + re-convergence) instead of a recompute;
    #: a subset of ``incremental_maintained``
    partial_resets: int = 0
    #: total size of the affected regions those partial resets touched —
    #: ``affected_vertices / partial_resets`` is the measured |AFF|
    affected_vertices: int = 0
    #: serialized bytes of per-fragment deltas replayed on pooled
    #: process workers (instead of re-shipping whole fragments)
    delta_bytes_shipped: int = 0
    #: fragments shipped to workers in full (first contact or log gap)
    fragments_shipped: int = 0
    #: fragments brought current worker-side by delta replay
    fragments_delta_shipped: int = 0
    #: serialized bytes of whole-fragment payloads that actually crossed
    #: the pipe — ``pipe_bytes`` minus this (and the delta bytes) is the
    #: control plane; near zero when fragments ride shared memory
    fragment_bytes_shipped: int = 0
    #: fragments that fell back from shared-memory descriptor shipping
    #: to the pickle path (publish or attach failure)
    shm_fallbacks: int = 0
    #: shared-memory plane gauges sampled at the end of the run: named
    #: segments the backend's arena held, and their mapped bytes
    shm_segments_active: int = 0
    shm_bytes_mapped: int = 0
    #: checkpoint restores this run performed (injected worker failures
    #: and real process-backend worker deaths alike)
    recoveries: int = 0
    #: straggler diagnostics: the worst per-superstep skew ratio seen
    #: (max worker time / mean worker time; 1.0 when balanced), and how
    #: many supersteps crossed :data:`STRAGGLER_SKEW`
    skew_ratio_max: float = 0.0
    straggler_steps: int = 0
    #: distribution of individual worker superstep times
    worker_time_hist: Histogram = field(default_factory=_time_hist)
    per_superstep: List[Dict[str, float]] = field(default_factory=list)

    def record_superstep(self, worker_times: List[float],
                         bytes_shipped: int, num_messages: int,
                         cost_model: CostModel) -> None:
        """Close one superstep: fold worker times and traffic into totals."""
        max_t = max(worker_times) if worker_times else 0.0
        sum_t = sum(worker_times)
        self.supersteps += 1
        self.total_compute_s += sum_t
        self.comm_bytes += bytes_shipped
        self.comm_messages += num_messages
        step_time = cost_model.superstep_time(max_t, bytes_shipped)
        self.parallel_time_s += step_time
        skew = 1.0
        slowest = -1
        if worker_times:
            slowest = max(range(len(worker_times)),
                          key=worker_times.__getitem__)
            mean_t = sum_t / len(worker_times)
            if len(worker_times) > 1 and mean_t > 0.0:
                skew = max_t / mean_t
            for t in worker_times:
                self.worker_time_hist.observe(t)
        if skew > self.skew_ratio_max:
            self.skew_ratio_max = skew
        if len(worker_times) > 1 and skew >= STRAGGLER_SKEW:
            self.straggler_steps += 1
        self.per_superstep.append({
            "max_worker_s": max_t,
            "sum_worker_s": sum_t,
            "bytes": float(bytes_shipped),
            "messages": float(num_messages),
            "step_time_s": step_time,
            "skew": skew,
            "slowest_worker": float(slowest),
        })

    @property
    def comm_megabytes(self) -> float:
        return self.comm_bytes / 1e6

    @property
    def maintained_ratio(self) -> float:
        """Fraction of applied update batches served incrementally."""
        return (self.incremental_maintained / self.deltas_applied
                if self.deltas_applied else 0.0)

    @property
    def control_plane_bytes(self) -> int:
        """Pipe traffic that was *not* bulk fragment/delta payload:
        commands, outcomes, states, descriptors.  This is the floor the
        shared-memory plane cannot remove."""
        return max(0, self.pipe_bytes - self.fragment_bytes_shipped
                   - self.delta_bytes_shipped)

    def merge(self, other: "RunMetrics") -> "RunMetrics":
        """Combine metrics of sequential phases (e.g. query batches).

        Field handling is reflection-driven (see ``_classify_fields``):
        every dataclass field is special-cased by name, declared a
        gauge, or combined automatically — a new counter cannot be
        silently dropped.
        """
        out = RunMetrics()
        out.backend = (self.backend if self.backend == other.backend
                       else "mixed")
        out.per_superstep = self.per_superstep + other.per_superstep
        for name in _RUN_ADDITIVE_FIELDS:
            setattr(out, name, getattr(self, name) + getattr(other, name))
        for name in _GAUGE_FIELDS:
            setattr(out, name, max(getattr(self, name), getattr(other, name)))
        for name in _RUN_HISTOGRAM_FIELDS:
            hist = getattr(self, name).copy()
            hist.merge(getattr(other, name))
            setattr(out, name, hist)
        return out

    def absorb(self, other: "RunMetrics") -> None:
        """Fold ``other`` into this object *in place*.

        Used by :class:`~repro.core.updates.ContinuousQuerySession` to
        accumulate a fallback re-run's cost: holders of the session's
        metrics (e.g. :class:`~repro.service.WatchHandle`) keep their
        reference, so the fold must mutate rather than replace.
        """
        if other.backend != self.backend:
            self.backend = "mixed"
        self.per_superstep.extend(other.per_superstep)
        for name in _RUN_ADDITIVE_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in _GAUGE_FIELDS:
            setattr(self, name, max(getattr(self, name),
                                    getattr(other, name)))
        for name in _RUN_HISTOGRAM_FIELDS:
            getattr(self, name).merge(getattr(other, name))

    def __repr__(self) -> str:
        return (f"RunMetrics(supersteps={self.supersteps}, "
                f"time={self.parallel_time_s:.4f}s, "
                f"comm={self.comm_megabytes:.4f}MB, "
                f"msgs={self.comm_messages})")


_RUN_ADDITIVE_FIELDS, _RUN_HISTOGRAM_FIELDS = _classify_fields(RunMetrics)

#: kept as the historical name some callers/tests may rely on
_ADDITIVE_FIELDS = _RUN_ADDITIVE_FIELDS


@dataclass
class ServiceMetrics:
    """Aggregate counters for one :class:`~repro.service.GrapeService`.

    Where :class:`RunMetrics` describes a single engine run, this rolls an
    entire service lifetime up: every query served (one-shot and standing),
    the fragmentation cache's effectiveness — the paper's "partitioned once
    for all queries" amortization made measurable — and the maintenance
    work done for graph updates.
    """

    queries_served: int = 0
    queries_failed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    updates_applied: int = 0
    watches_started: int = 0
    watch_refreshes: int = 0
    supersteps_total: int = 0
    comm_bytes_total: int = 0
    comm_messages_total: int = 0
    #: CSR snapshot reuse across the service's cached fragmentations:
    #: builds are lazy (first kernel use per fragment), invalidations are
    #: mutation-driven (insert_edges) — a low invalidation/build ratio
    #: means the serving layer amortizes snapshots across queries.
    csr_snapshots_built: int = 0
    csr_snapshot_invalidations: int = 0
    #: physical execution totals: real wall-clock of served runs and the
    #: serialized bytes that crossed process-backend pipes
    wall_clock_s_total: float = 0.0
    pipe_bytes_total: int = 0
    #: the update pipeline, service-wide: how watcher refreshes split
    #: between the incremental fast path and recompute fallbacks, and
    #: how many serialized bytes of per-fragment deltas were replayed on
    #: process workers instead of full fragment re-ships —
    #: `incremental_maintained / (incremental_maintained +
    #: fallback_reruns)` is the serving layer's incremental-vs-recompute
    #: ratio
    incremental_maintained: int = 0
    fallback_reruns: int = 0
    #: bounded delete-aware refreshes (a subset of
    #: ``incremental_maintained``) and the total |AFF| they reset
    partial_resets: int = 0
    affected_vertices: int = 0
    delta_bytes_shipped: int = 0
    #: the shared-memory fragment plane, service-wide: whole-fragment
    #: pickle bytes that actually crossed pipes (near zero when the
    #: plane is active), fragments that fell back to pickle shipping,
    #: and point-in-time gauges of the segments currently published and
    #: their mapped bytes (synced from the live arenas, not summed)
    fragment_bytes_shipped: int = 0
    shm_fallbacks: int = 0
    shm_segments_active: int = 0
    shm_bytes_mapped: int = 0
    #: the durability layer (``GrapeService(store_dir=...)``): snapshot
    #: generations committed, WAL records appended, WAL records replayed
    #: during warm start / loads, and graphs recovered from the store at
    #: service construction — ``edge_lists_parsed`` counts the cold path
    #: (``load_graph_file``), so a warm-started service serving with
    #: ``edge_lists_parsed == 0`` provably skipped re-parsing
    snapshots_written: int = 0
    wal_appends: int = 0
    wal_replayed: int = 0
    warm_starts: int = 0
    edge_lists_parsed: int = 0
    #: checkpoint restores across served runs (fault tolerance)
    recoveries: int = 0
    #: the HA serving layer: queries rejected by admission control
    #: (typed load shedding, not failures of the engine) and queries
    #: answered from another identical in-flight query's engine run
    #: (multi-query grouping) — ``queries_grouped`` counts *followers*,
    #: so N coalesced submissions show up as 1 engine run observed via
    #: :meth:`observe_run` plus N-1 grouped queries
    queries_shed: int = 0
    queries_grouped: int = 0
    #: the replication tier (:class:`~repro.replication.ReplicaService`):
    #: WAL batches applied by tailing, generation rollovers followed,
    #: and full re-bootstraps from a snapshot after falling behind the
    #: primary's GC retention window
    replica_batches_applied: int = 0
    replica_rollovers: int = 0
    replica_resnapshots: int = 0
    #: the resilience plane: queries that needed at least one retry (and
    #: the total retry attempts behind them), deadline misses, caller
    #: cancellations, and the circuit breaker's life — backends degraded
    #: down the process→thread→serial chain, half-open probes of the
    #: configured backend after cooldown, and successful restorations
    queries_retried: int = 0
    retries_total: int = 0
    deadlines_exceeded: int = 0
    queries_cancelled: int = 0
    backend_degradations: int = 0
    backend_probes: int = 0
    backend_restorations: int = 0
    #: the telemetry plane: queries that crossed the service's
    #: slow-query threshold, the worst per-superstep skew ratio seen
    #: across served runs, supersteps that crossed the straggler
    #: threshold, and latency distributions (per-query wall clock and
    #: per-worker superstep times)
    queries_slow: int = 0
    skew_ratio_max: float = 0.0
    straggler_steps: int = 0
    query_wall_s: Histogram = field(default_factory=_time_hist)
    worker_time_hist: Histogram = field(default_factory=_time_hist)

    def observe_run(self, metrics: "RunMetrics") -> None:
        """Fold one completed query run into the aggregates."""
        self.queries_served += 1
        self.wall_clock_s_total += metrics.wall_clock_s
        self.pipe_bytes_total += metrics.pipe_bytes
        self.delta_bytes_shipped += metrics.delta_bytes_shipped
        self.fragment_bytes_shipped += metrics.fragment_bytes_shipped
        self.shm_fallbacks += metrics.shm_fallbacks
        self.recoveries += metrics.recoveries
        self.query_wall_s.observe(metrics.wall_clock_s)
        self.worker_time_hist.merge(metrics.worker_time_hist)
        self.straggler_steps += metrics.straggler_steps
        if metrics.skew_ratio_max > self.skew_ratio_max:
            self.skew_ratio_max = metrics.skew_ratio_max
        self._observe_cost(metrics.supersteps, metrics.comm_bytes,
                           metrics.comm_messages)

    def observe_maintenance(self, supersteps: int, comm_bytes: int,
                            comm_messages: int, *, maintained: int = 0,
                            fallbacks: int = 0, partial_resets: int = 0,
                            affected_vertices: int = 0,
                            delta_bytes: int = 0) -> None:
        """Fold one standing-query refresh (its *delta* cost) in."""
        self.watch_refreshes += 1
        self.incremental_maintained += maintained
        self.fallback_reruns += fallbacks
        self.partial_resets += partial_resets
        self.affected_vertices += affected_vertices
        self.delta_bytes_shipped += delta_bytes
        self._observe_cost(supersteps, comm_bytes, comm_messages)

    def _observe_cost(self, supersteps: int, comm_bytes: int,
                      comm_messages: int) -> None:
        self.supersteps_total += supersteps
        self.comm_bytes_total += comm_bytes
        self.comm_messages_total += comm_messages

    @property
    def comm_megabytes_total(self) -> float:
        return self.comm_bytes_total / 1e6

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of fragmentation lookups served from cache."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def deltas_applied(self) -> int:
        """Applied (non-no-op) update batches — an alias: no-op batches
        return before any counter moves, so every counted update *is* an
        applied delta."""
        return self.updates_applied

    @property
    def maintained_ratio(self) -> float:
        """Fraction of watcher refreshes served by the incremental fast
        path (the rest were recompute fallbacks)."""
        total = self.incremental_maintained + self.fallback_reruns
        return self.incremental_maintained / total if total else 0.0

    def __repr__(self) -> str:
        return (f"ServiceMetrics(queries={self.queries_served}, "
                f"failed={self.queries_failed}, "
                f"cache={self.cache_hits}h/{self.cache_misses}m, "
                f"updates={self.updates_applied}, "
                f"maintained={self.incremental_maintained}/"
                f"fallback={self.fallback_reruns}, "
                f"supersteps={self.supersteps_total}, "
                f"comm={self.comm_megabytes_total:.4f}MB, "
                f"csr={self.csr_snapshots_built}built/"
                f"{self.csr_snapshot_invalidations}inv, "
                f"store={self.snapshots_written}snap/"
                f"{self.wal_appends}wal)")
