"""Crash-safe file publication, shared by every durability writer.

One implementation of the atomic-write protocol — temp file in the
destination directory, write, flush, fsync, ``os.replace``, fsync of the
parent directory — used by the snapshot container, the store manifest
and the arbitrator's disk checkpoints, so their durability guarantees
cannot silently diverge.

The directory fsync matters: ``os.replace`` makes the rename atomic in
the namespace, but on power loss the *directory entry* itself can be
lost unless the parent directory's metadata reaches disk too; without
it, a manifest could survive pointing at files whose entries vanished.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_bytes"]


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Publish ``data`` at ``path`` atomically and durably.

    A reader never observes a partial file: it sees either the previous
    content or the new one, across crashes and power loss.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(prefix=path.name + ".", suffix=".tmp",
                               dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # Durable rename: flush the parent directory's entry table.  Some
    # filesystems refuse O_RDONLY directory fsyncs; degrade silently —
    # the rename is still atomic, just not power-loss-durable there.
    try:
        dfd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dfd)
    except OSError:
        pass
    finally:
        os.close(dfd)
