"""Vectorized CSR fragment kernels (paper Sections 3 and 6).

GRAPE's core claim is that fragment-local computation may use *any*
representation effective for the sequential algorithm.  The dict-of-dicts
:class:`~repro.graph.graph.Graph` is convenient for the textbook
algorithms in :mod:`repro.sequential`, but its per-edge cost is
interpreter speed, not machine speed.  This package provides numpy
kernels over the frozen :class:`~repro.graph.csr.CSRGraph` snapshot for
the four traversal-shaped query classes:

* :func:`csr_sssp` — frontier Bellman–Ford relaxation (the delta-stepping
  degenerate case with a single bucket per round);
* :func:`csr_bfs` — level-synchronous BFS hop counts;
* :func:`csr_components` — min-label propagation with pointer jumping;
* :func:`csr_pagerank_push` — one power-iteration push of rank mass.

**Capability-flag dispatch.**  A PIE program advertises CSR support with
the class attribute ``supports_csr = True`` and an instance switch
``use_csr`` (constructor argument, default on).  Inside ``PEval`` /
``IncEval`` the program asks its fragment for a snapshot via
:meth:`~repro.partition.base.Fragment.csr` and runs the kernel; when
``use_csr`` is off the original dict-graph sequential algorithm runs
instead.  Both paths compute *bitwise-identical* results: every kernel
reaches the same fixpoint as its sequential oracle, performs float
additions in the same left-fold order (``np.minimum.at`` /
``np.add.at`` apply element-by-element in array order), and converts
back to the exact Python floats the dict path would have produced — so
answers, superstep counts and shipped parameter values are unchanged,
only the time to compute them.

**Snapshot invalidation.**  ``Fragment.csr()`` builds the snapshot
lazily on first use and caches it.  Any structural mutation of the
fragment — edge/node insertion, deletion or reweight through
:func:`repro.core.updates.apply_delta` (and therefore
``GrapeService.update`` and its sugar) — calls
``Fragment.invalidate_csr()``,
which drops the cached snapshot and bumps ``Fragment.csr_epoch`` so that
program-side arrays derived from the old snapshot's dense ids are
rebuilt.  The next kernel call rebuilds the snapshot from the mutated
dict graph (itself vectorized: see ``CSRGraph.from_graph``).

**When the dict fallback is used.**  The sequential path runs when the
program was constructed with ``use_csr=False``, for programs that do
not set ``supports_csr`` (Sim, SubIso, CF), and for the incremental
bookkeeping that is naturally O(|changed|) in dict form (e.g. CC's
``lower_cid`` relabeling, which is already bounded by the affected
component and gains nothing from vectorization).
"""

from repro.kernels.bfs import (UNREACHED_HOPS, csr_bfs, csr_bfs_affected,
                               csr_bfs_reseed)
from repro.kernels.cc import csr_components, csr_region_components
from repro.kernels.pagerank import csr_pagerank_push
from repro.kernels.sssp import csr_sssp, csr_sssp_affected, csr_sssp_reseed

__all__ = [
    "csr_sssp",
    "csr_sssp_affected",
    "csr_sssp_reseed",
    "csr_bfs",
    "csr_bfs_affected",
    "csr_bfs_reseed",
    "csr_components",
    "csr_region_components",
    "csr_pagerank_push",
    "UNREACHED_HOPS",
]
