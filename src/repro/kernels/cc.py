"""Vectorized connected components over a CSR snapshot.

Min-label propagation with pointer jumping: every node starts labeled
with its own dense id; each round pushes labels across every edge in
both directions (``np.minimum.at``) and then shortcuts chains
(``comp = comp[comp]``) until stable.  Labels only decrease and are
bounded below by the component minimum, so the loop converges in
O(log n) rounds to ``comp[v] =`` the smallest dense id in ``v``'s
component — edge direction ignored, matching the paper's undirected CC
semantics.
"""

from __future__ import annotations

import numpy as np

__all__ = ["csr_components"]


def csr_components(csr) -> np.ndarray:
    """Component representative (minimum dense id) for every node."""
    n = csr.n
    comp = np.arange(n, dtype=np.int64)
    if not csr.indices.size:
        return comp
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(csr.indptr))
    dst = csr.indices
    while True:
        new = comp.copy()
        np.minimum.at(new, dst, comp[src])
        np.minimum.at(new, src, comp[dst])
        # Pointer jumping: labels satisfy comp[v] <= v, so chasing
        # labels-of-labels strictly decreases until stable.
        while True:
            jumped = new[new]
            if np.array_equal(jumped, new):
                break
            new = jumped
        if np.array_equal(new, comp):
            return comp
        comp = new
