"""Vectorized connected components over a CSR snapshot.

Min-label propagation with pointer jumping: every node starts labeled
with its own dense id; each round pushes labels across every edge in
both directions (``np.minimum.at``) and then shortcuts chains
(``comp = comp[comp]``) until stable.  Labels only decrease and are
bounded below by the component minimum, so the loop converges in
O(log n) rounds to ``comp[v] =`` the smallest dense id in ``v``'s
component — edge direction ignored, matching the paper's undirected CC
semantics.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.kernels._segments import edge_positions

__all__ = ["csr_components", "csr_region_components"]


def csr_components(csr) -> np.ndarray:
    """Component representative (minimum dense id) for every node."""
    n = csr.n
    comp = np.arange(n, dtype=np.int64)
    if not csr.indices.size:
        return comp
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(csr.indptr))
    dst = csr.indices
    while True:
        new = comp.copy()
        np.minimum.at(new, dst, comp[src])
        np.minimum.at(new, src, comp[dst])
        # Pointer jumping: labels satisfy comp[v] <= v, so chasing
        # labels-of-labels strictly decreases until stable.
        while True:
            jumped = new[new]
            if np.array_equal(jumped, new):
                break
            new = jumped
        if np.array_equal(new, comp):
            return comp
        comp = new


def csr_region_components(csr, region) -> List[np.ndarray]:
    """Components of the subgraph induced on the ``region`` dense ids.

    The delete-aware CC path condemns whole components and rebuilds them
    from the mutated snapshot: only edges with *both* endpoints inside
    the region participate (the condemned components were closed, so no
    surviving edge crosses the boundary).  Same min-label + pointer
    jumping as :func:`csr_components`, restricted to the region's edges.
    Returns the region partitioned into groups of dense ids.
    """
    region = np.asarray(sorted(region), dtype=np.int64)
    if not region.size:
        return []
    mask = np.zeros(csr.n, dtype=bool)
    mask[region] = True
    starts = csr.indptr[region]
    counts = csr.indptr[region + 1] - starts
    pos = edge_positions(starts, counts)
    src = np.repeat(region, counts)
    dst = csr.indices[pos]
    keep = mask[dst]
    src, dst = src[keep], dst[keep]
    comp = np.arange(csr.n, dtype=np.int64)
    while src.size:
        new = comp.copy()
        np.minimum.at(new, dst, comp[src])
        np.minimum.at(new, src, comp[dst])
        while True:
            jumped = new[new]
            if np.array_equal(jumped, new):
                break
            new = jumped
        if np.array_equal(new, comp):
            break
        comp = new
    labels = comp[region]
    order = np.argsort(labels, kind="stable")
    bounds = np.nonzero(np.diff(labels[order]))[0] + 1
    return [region[idx] for idx in np.split(order, bounds)]
