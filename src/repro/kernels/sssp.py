"""Vectorized single-source shortest paths over a CSR snapshot.

Frontier-based Bellman–Ford: each round relaxes every out-edge of the
nodes whose distance improved in the previous round, with
``np.minimum.at`` folding candidate distances in place.  This is the
single-bucket degenerate case of delta-stepping; on the low-diameter
graphs of the paper's Figure 6 workloads it converges in a handful of
rounds, each one a few numpy gathers over the frontier's edges.

The fixpoint is bitwise-identical to Dijkstra's: at convergence every
distance satisfies ``dist[v] = min over in-edges of dist[u] + w`` with
the same IEEE-754 additions the sequential algorithm performs, so the
values (not just their order) match :func:`repro.sequential.sssp.dijkstra`
exactly.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.kernels._segments import edge_positions

__all__ = ["csr_sssp", "csr_sssp_affected", "csr_sssp_reseed"]


def csr_sssp(csr, seeds: Dict[int, float],
             dist: Optional[np.ndarray] = None
             ) -> Tuple[np.ndarray, np.ndarray]:
    """Relax ``seeds`` (dense id -> candidate distance) to a fixpoint.

    Parameters
    ----------
    csr:
        A :class:`~repro.graph.csr.CSRGraph`.
    seeds:
        Candidate distances; only improvements over ``dist`` are applied
        (the monotonic decrease-only discipline of IncEval).
    dist:
        Existing float64 estimates, mutated in place; ``None`` starts
        from all-infinite.

    Returns
    -------
    ``(dist, changed)`` — the distance array and the (sorted) dense ids
    whose distance improved, the affected area ``AFF``.
    """
    n = csr.n
    if dist is None:
        dist = np.full(n, np.inf, dtype=np.float64)
    changed = np.zeros(n, dtype=bool)

    frontier_list = []
    for vid, d in seeds.items():
        if d < dist[vid]:
            dist[vid] = d
            frontier_list.append(vid)
    frontier = np.array(frontier_list, dtype=np.int64)
    changed[frontier] = True

    indptr, indices, weights = csr.indptr, csr.indices, csr.weights
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        pos = edge_positions(starts, counts)
        if not pos.size:
            break
        w = weights[pos]
        if np.any(w < 0):
            bad = pos[np.argmax(w < 0)]
            src = int(np.searchsorted(indptr, bad, side="right")) - 1
            raise ValueError(
                f"negative edge weight on "
                f"({csr.node_of[src]}, {csr.node_of[int(indices[bad])]})")
        cand = np.repeat(dist[frontier], counts) + w
        dst = indices[pos]
        if dst.size * 8 >= n:
            # Dense round: one O(n) compare beats sorting the touched
            # destinations (np.unique is O(E_round log E_round)).
            before_all = dist.copy()
            np.minimum.at(dist, dst, cand)
            frontier = np.nonzero(dist < before_all)[0]
        else:
            # Sparse round (the high-diameter regime, where a full scan
            # per round would cost O(n * rounds)): compare only the
            # touched destinations.  Every duplicate of a destination
            # gathers the same pre-fold value, so the improved test
            # agrees across duplicates; both branches yield the same
            # sorted unique frontier.
            before = dist[dst]
            np.minimum.at(dist, dst, cand)
            frontier = np.unique(dst[dist[dst] < before])
        changed[frontier] = True
    return dist, np.nonzero(changed)[0]


def csr_sssp_affected(csr, dist: np.ndarray, seeds) -> np.ndarray:
    """Forward closure of a shortest-path invalidation (delete-aware
    IncEval, Ramalingam & Reps).

    ``seeds`` are dense ids whose converged distance is known to be
    invalidated (their parent edge was deleted or raised); the closure
    adds every id whose *current* distance is supported by an affected
    in-neighbor — ``dist[x] == dist[y] + w`` is exactly the provenance
    relation the converged distances encode, tested edge-parallel over
    the snapshot.  Returns the sorted affected ids, seeds included.
    Ties over-approximate, which is safe: the re-seeded re-convergence
    restores any value that was also supported elsewhere.
    """
    n = csr.n
    affected = np.zeros(n, dtype=bool)
    seeds = np.asarray(sorted(seeds), dtype=np.int64)
    if not seeds.size:
        return seeds
    affected[seeds] = True
    indptr, indices, weights = csr.indptr, csr.indices, csr.weights
    frontier = seeds[np.isfinite(dist[seeds])]
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        pos = edge_positions(starts, counts)
        if not pos.size:
            break
        cand = np.repeat(dist[frontier], counts) + weights[pos]
        dst = indices[pos]
        hit = (dist[dst] == cand) & ~affected[dst]
        frontier = np.unique(dst[hit])
        affected[frontier] = True
    return np.nonzero(affected)[0]


def csr_sssp_reseed(csr, dist: np.ndarray, affected) -> Dict[int, float]:
    """Boundary re-seeding after a region reset.

    For every affected id, the best candidate through an *unaffected*
    in-neighbor (``dist[y] + w`` over the reverse/CSC structure) — the
    surviving boundary the re-convergence restarts from.  ``dist`` must
    already be neutralized (``inf``) on the affected ids.  Returns a
    seed dict fit for :func:`csr_sssp`; candidates are the same IEEE-754
    sums the dict path computes, so the fixpoint stays bitwise-equal.
    """
    affected = np.asarray(sorted(affected), dtype=np.int64)
    if not affected.size:
        return {}
    mask = np.zeros(csr.n, dtype=bool)
    mask[affected] = True
    starts = csr.rev_indptr[affected]
    counts = csr.rev_indptr[affected + 1] - starts
    pos = edge_positions(starts, counts)
    if not pos.size:
        return {}
    src = csr.rev_indices[pos]
    keep = ~mask[src]
    dst = np.repeat(affected, counts)[keep]
    cand = dist[src[keep]] + csr.rev_weights[pos][keep]
    finite = np.isfinite(cand)
    dst, cand = dst[finite], cand[finite]
    if not dst.size:
        return {}
    best = np.full(csr.n, np.inf, dtype=np.float64)
    np.minimum.at(best, dst, cand)
    return {int(i): float(best[i]) for i in np.unique(dst).tolist()}
