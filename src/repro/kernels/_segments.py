"""Shared segment-gather helper for the CSR kernels.

A CSR row subset is a set of ``(start, count)`` segments into the flat
``indices`` / ``weights`` arrays; :func:`edge_positions` expands those
segments into the flat positions of every edge they cover, fully
vectorized.  The expansion preserves segment order and within-segment
order, which is what lets the kernels replay the dict path's exact edge
iteration (and therefore its exact float-accumulation order).
"""

from __future__ import annotations

import numpy as np

__all__ = ["edge_positions"]


def edge_positions(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat edge positions covered by ``(starts[i], counts[i])`` segments.

    Equivalent to ``np.concatenate([np.arange(s, s + c) for s, c in
    zip(starts, counts)])`` without the Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + within
