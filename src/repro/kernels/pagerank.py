"""Vectorized PageRank push over a CSR snapshot.

One power-iteration push: every owned node with out-edges divides its
rank by its out-degree and adds the share to each successor.  The dict
path accumulates ``incoming[w] += share`` edge by edge; ``np.add.at``
performs the same left fold in the same order (owned nodes in their
set-iteration order, successors in adjacency order), so the resulting
float sums are bitwise-identical — the distributed power iteration is
unchanged, only vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.kernels._segments import edge_positions

__all__ = ["csr_pagerank_push"]


def csr_pagerank_push(csr, rank: np.ndarray,
                      owned_ids: np.ndarray) -> np.ndarray:
    """Incoming rank mass per dense id after one push from ``owned_ids``.

    ``rank`` holds the current rank per dense id (zero for non-owned
    nodes); ``owned_ids`` lists the pushing nodes in the exact order the
    dict path iterates them.  Nodes without out-edges push nothing
    (their mass is handled by the teleport term, as in the dict path).
    """
    indptr = csr.indptr
    counts = indptr[owned_ids + 1] - indptr[owned_ids]
    has_out = counts > 0
    pushers = owned_ids[has_out]
    counts = counts[has_out]
    incoming = np.zeros(csr.n, dtype=np.float64)
    if not pushers.size:
        return incoming
    pos = edge_positions(indptr[pushers], counts)
    shares = np.repeat(rank[pushers] / counts, counts)
    np.add.at(incoming, csr.indices[pos], shares)
    return incoming
