"""Vectorized BFS hop levels over a CSR snapshot.

Level-synchronous frontier expansion: each round gathers the out-edges of
the frontier, folds ``hop + 1`` candidates with ``np.minimum.at``, and
the improved nodes form the next frontier.  Hop counts are integers, so
equality with the queue-based sequential BFS is exact by construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.kernels._segments import edge_positions

__all__ = ["csr_bfs", "csr_bfs_affected", "csr_bfs_reseed", "UNREACHED_HOPS"]

#: sentinel for "not reached" (matches the dict path's ``1 << 60`` bound)
UNREACHED_HOPS = 1 << 60


def csr_bfs(csr, seeds: Dict[int, int],
            hops: Optional[np.ndarray] = None
            ) -> Tuple[np.ndarray, np.ndarray]:
    """Expand ``seeds`` (dense id -> hop count) to a fixpoint.

    ``hops`` is an int64 array (``UNREACHED_HOPS`` = unreached), mutated
    in place; ``None`` starts all-unreached.  Returns ``(hops, changed)``
    with ``changed`` the sorted dense ids whose hop count improved.
    """
    n = csr.n
    if hops is None:
        hops = np.full(n, UNREACHED_HOPS, dtype=np.int64)
    changed = np.zeros(n, dtype=bool)

    frontier_list = []
    for vid, h in seeds.items():
        if h < hops[vid]:
            hops[vid] = h
            frontier_list.append(vid)
    frontier = np.array(frontier_list, dtype=np.int64)
    changed[frontier] = True

    indptr, indices = csr.indptr, csr.indices
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        pos = edge_positions(starts, counts)
        if not pos.size:
            break
        cand = np.repeat(hops[frontier], counts) + 1
        # Dense levels scan the whole array once; sparse levels compare
        # only the touched destinations (see csr_sssp for the rationale
        # and the duplicate-destination argument).
        dst = indices[pos]
        if dst.size * 8 >= n:
            before_all = hops.copy()
            np.minimum.at(hops, dst, cand)
            frontier = np.nonzero(hops < before_all)[0]
        else:
            before = hops[dst]
            np.minimum.at(hops, dst, cand)
            frontier = np.unique(dst[hops[dst] < before])
        changed[frontier] = True
    return hops, np.nonzero(changed)[0]


def csr_bfs_affected(csr, hops: np.ndarray, seeds) -> np.ndarray:
    """Forward closure of a BFS-tree invalidation (delete-aware IncEval).

    Integer analog of :func:`repro.kernels.sssp.csr_sssp_affected`: every
    node whose current hop count is supported by an affected in-neighbor
    (``hops[x] == hops[y] + 1``) joins the region.  Returns the sorted
    affected dense ids, seeds included.
    """
    n = csr.n
    affected = np.zeros(n, dtype=bool)
    seeds = np.asarray(sorted(seeds), dtype=np.int64)
    if not seeds.size:
        return seeds
    affected[seeds] = True
    indptr, indices = csr.indptr, csr.indices
    frontier = seeds[hops[seeds] < UNREACHED_HOPS]
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        pos = edge_positions(starts, counts)
        if not pos.size:
            break
        cand = np.repeat(hops[frontier], counts) + 1
        dst = indices[pos]
        hit = (hops[dst] == cand) & ~affected[dst]
        frontier = np.unique(dst[hit])
        affected[frontier] = True
    return np.nonzero(affected)[0]


def csr_bfs_reseed(csr, hops: np.ndarray, affected) -> Dict[int, int]:
    """Boundary re-seeding after a region reset: for every affected id,
    the best hop candidate through an *unaffected* in-neighbor
    (``hops[y] + 1`` over the reverse structure).  ``hops`` must already
    be neutralized (``UNREACHED_HOPS``) on the affected ids; returns a
    seed dict fit for :func:`csr_bfs`.
    """
    affected = np.asarray(sorted(affected), dtype=np.int64)
    if not affected.size:
        return {}
    mask = np.zeros(csr.n, dtype=bool)
    mask[affected] = True
    starts = csr.rev_indptr[affected]
    counts = csr.rev_indptr[affected + 1] - starts
    pos = edge_positions(starts, counts)
    if not pos.size:
        return {}
    src = csr.rev_indices[pos]
    keep = ~mask[src]
    dst = np.repeat(affected, counts)[keep]
    cand = hops[src[keep]] + 1
    reached = cand < UNREACHED_HOPS
    dst, cand = dst[reached], cand[reached]
    if not dst.size:
        return {}
    best = np.full(csr.n, UNREACHED_HOPS, dtype=np.int64)
    np.minimum.at(best, dst, cand)
    return {int(i): int(best[i]) for i in np.unique(dst).tolist()}
