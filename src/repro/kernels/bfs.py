"""Vectorized BFS hop levels over a CSR snapshot.

Level-synchronous frontier expansion: each round gathers the out-edges of
the frontier, folds ``hop + 1`` candidates with ``np.minimum.at``, and
the improved nodes form the next frontier.  Hop counts are integers, so
equality with the queue-based sequential BFS is exact by construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.kernels._segments import edge_positions

__all__ = ["csr_bfs", "UNREACHED_HOPS"]

#: sentinel for "not reached" (matches the dict path's ``1 << 60`` bound)
UNREACHED_HOPS = 1 << 60


def csr_bfs(csr, seeds: Dict[int, int],
            hops: Optional[np.ndarray] = None
            ) -> Tuple[np.ndarray, np.ndarray]:
    """Expand ``seeds`` (dense id -> hop count) to a fixpoint.

    ``hops`` is an int64 array (``UNREACHED_HOPS`` = unreached), mutated
    in place; ``None`` starts all-unreached.  Returns ``(hops, changed)``
    with ``changed`` the sorted dense ids whose hop count improved.
    """
    n = csr.n
    if hops is None:
        hops = np.full(n, UNREACHED_HOPS, dtype=np.int64)
    changed = np.zeros(n, dtype=bool)

    frontier_list = []
    for vid, h in seeds.items():
        if h < hops[vid]:
            hops[vid] = h
            frontier_list.append(vid)
    frontier = np.array(frontier_list, dtype=np.int64)
    changed[frontier] = True

    indptr, indices = csr.indptr, csr.indices
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        pos = edge_positions(starts, counts)
        if not pos.size:
            break
        cand = np.repeat(hops[frontier], counts) + 1
        # Dense levels scan the whole array once; sparse levels compare
        # only the touched destinations (see csr_sssp for the rationale
        # and the duplicate-destination argument).
        dst = indices[pos]
        if dst.size * 8 >= n:
            before_all = hops.copy()
            np.minimum.at(hops, dst, cand)
            frontier = np.nonzero(hops < before_all)[0]
        else:
            before = hops[dst]
            np.minimum.at(hops, dst, cand)
            frontier = np.unique(dst[hops[dst] < before])
        changed[frontier] = True
    return hops, np.nonzero(changed)[0]
