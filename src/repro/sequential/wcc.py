"""Sequential connected components (paper Section 5.2).

Provides the batch algorithm GRAPE plugs in as ``PEval`` for CC — a linear
DFS/BFS labeling — together with a :class:`DisjointSets` union-find used by
tests and by the block-centric baseline's partition-time precomputation.

Component ids follow the paper's convention: the minimum node id in the
component (node ids must be orderable for this; all our workloads use ints).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Set

from repro.graph.graph import Graph, Node

__all__ = ["DisjointSets", "connected_components", "LocalComponents"]


class DisjointSets:
    """Union-find with path compression and union by rank."""

    def __init__(self, items: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        for x in items:
            self.add(x)

    def add(self, x: Hashable) -> None:
        if x not in self._parent:
            self._parent[x] = x
            self._rank[x] = 0

    def find(self, x: Hashable) -> Hashable:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, x: Hashable, y: Hashable) -> bool:
        """Merge the sets of ``x`` and ``y``; returns False if already one."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._rank[rx] < self._rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if self._rank[rx] == self._rank[ry]:
            self._rank[rx] += 1
        return True

    def same(self, x: Hashable, y: Hashable) -> bool:
        return self.find(x) == self.find(y)

    def groups(self) -> Dict[Hashable, Set[Hashable]]:
        out: Dict[Hashable, Set[Hashable]] = {}
        for x in self._parent:
            out.setdefault(self.find(x), set()).add(x)
        return out

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    def __len__(self) -> int:
        return len(self._parent)


def connected_components(graph: Graph) -> Dict[Node, Node]:
    """Map every node to its component id (minimum node id reachable).

    Edge direction is ignored, matching the paper's undirected CC
    semantics.
    """
    cid: Dict[Node, Node] = {}
    for start in graph.nodes():
        if start in cid:
            continue
        members: List[Node] = []
        dq = deque([start])
        seen = {start}
        while dq:
            v = dq.popleft()
            members.append(v)
            for w in graph.neighbors(v):
                if w not in seen:
                    seen.add(w)
                    dq.append(w)
        root = min(members)
        for v in members:
            cid[v] = root
    return cid


class LocalComponents:
    """Fragment-local component structure with O(|AFF|) cid lowering.

    This is the paper's PEval bookkeeping for CC: each local component gets
    a "root" carrying the minimum node id; every member links directly to
    its root, so a message lowering one member's cid relabels the whole
    component by following the direct links — the bounded IncEval of
    Section 5.2.
    """

    def __init__(self, graph: Graph):
        self.cid: Dict[Node, Node] = {}
        self._root_of: Dict[Node, Node] = {}
        self._members: Dict[Node, List[Node]] = {}
        for start in graph.nodes():
            if start in self._root_of:
                continue
            members: List[Node] = []
            dq = deque([start])
            seen = {start}
            while dq:
                v = dq.popleft()
                members.append(v)
                for w in graph.neighbors(v):
                    if w not in seen:
                        seen.add(w)
                        dq.append(w)
            self._install(members)

    @classmethod
    def from_partition(cls,
                       groups: Iterable[List[Node]]) -> "LocalComponents":
        """Build the structure from precomputed component member lists.

        Used by the CSR path: :func:`repro.kernels.csr_components`
        delivers the partition into components, and only the root/member
        bookkeeping (identical to the BFS constructor's) remains.
        """
        self = cls.__new__(cls)
        self.cid = {}
        self._root_of = {}
        self._members = {}
        for members in groups:
            if members:
                self._install(members)
        return self

    def _install(self, members: List[Node]) -> None:
        """Register one freshly discovered component."""
        root = min(members)
        self._members[root] = members
        for v in members:
            self._root_of[v] = root
            self.cid[v] = root

    def install(self, members: List[Node]) -> None:
        """Register one rebuilt component (public entry for callers that
        discovered the partition externally, e.g. the CSR region
        rebuild)."""
        self._install(list(members))

    def lower_cid(self, v: Node, new_cid: Node) -> List[Node]:
        """Lower the cid of ``v``'s whole component to ``new_cid``.

        Returns the nodes whose cid changed (empty when ``new_cid`` does
        not improve) — cost proportional to the affected component only.
        A node the structure has never seen (it joined the fragment via
        a graph update that shipped no local edges) is registered as its
        own singleton component first.
        """
        root = self._root_of.get(v)
        if root is None:
            self.add_node(v)
            root = v
        if not new_cid < self.cid[root]:
            return []
        changed = []
        for member in self._members[root]:
            if new_cid < self.cid[member]:
                self.cid[member] = new_cid
                changed.append(member)
        return changed

    def component_members(self, v: Node) -> List[Node]:
        return list(self._members[self._root_of[v]])

    def detach(self, v: Node) -> None:
        """Remove one node from its component without condemning it.

        Used for retired mirror copies whose component is known to
        survive globally: the node leaves the fragment, the remaining
        members keep their (still valid) cids.  The blob may end up
        coarser than true local connectivity, which the maintenance
        invariant allows — members of one stored component always
        belong to one global component.
        """
        root = self._root_of.pop(v, None)
        if root is None:
            return
        self.cid.pop(v, None)
        members = self._members.pop(root)
        members.remove(v)
        if not members:
            return
        new_root = root if v != root else min(members)
        self._members[new_root] = members
        if new_root != root:
            for m in members:
                self._root_of[m] = new_root

    def drop_components(self, nodes: Iterable[Node]) -> Set[Node]:
        """Condemn the whole local component of every listed node.

        The delete-aware path cannot tell which members a deletion
        actually disconnects without re-traversing, so it condemns the
        closed component and rebuilds it (:meth:`rebuild_region`) on the
        mutated graph.  Returns the removed members.
        """
        removed: Set[Node] = set()
        for v in nodes:
            root = self._root_of.get(v)
            if root is None:
                continue
            for member in self._members.pop(root):
                del self._root_of[member]
                del self.cid[member]
                removed.add(member)
        return removed

    def rebuild_region(self, graph: Graph, nodes: Set[Node]) -> None:
        """Re-discover components inside a condemned region.

        BFS restricted to ``nodes`` on the (already mutated) graph; edges
        leaving the region are ignored — the condemned components were
        closed under local edges, so a region-crossing edge can only be a
        batch insertion, and those are folded separately via
        :meth:`add_edge`.  Nodes no longer in the graph (retired by the
        batch) simply stay dropped.
        """
        seen: Set[Node] = set()
        for start in nodes:
            if start in seen or not graph.has_node(start):
                continue
            members: List[Node] = []
            dq = deque([start])
            seen.add(start)
            while dq:
                v = dq.popleft()
                members.append(v)
                for w in graph.neighbors(v):
                    if w in nodes and w not in seen:
                        seen.add(w)
                        dq.append(w)
            self._install(members)

    def add_node(self, v: Node) -> None:
        """Register a newly inserted node as its own component."""
        if v not in self._root_of:
            self._root_of[v] = v
            self._members[v] = [v]
            self.cid[v] = v

    def add_edge(self, u: Node, v: Node) -> List[Node]:
        """Merge the components of ``u`` and ``v`` (edge insertion).

        Returns the nodes whose cid changed; cost is proportional to the
        smaller component (weighted-union style).
        """
        self.add_node(u)
        self.add_node(v)
        ru, rv = self._root_of[u], self._root_of[v]
        if ru == rv:
            return []
        if len(self._members[ru]) < len(self._members[rv]):
            ru, rv = rv, ru  # absorb the smaller component rv into ru
        new_cid = min(self.cid[ru], self.cid[rv])
        changed: List[Node] = []
        for member in self._members[rv]:
            self._root_of[member] = ru
            if new_cid < self.cid[member]:
                self.cid[member] = new_cid
                changed.append(member)
        self._members[ru].extend(self._members.pop(rv))
        if new_cid < self.cid[ru]:
            for member in self._members[ru]:
                if new_cid < self.cid[member]:
                    self.cid[member] = new_cid
                    changed.append(member)
        return changed
