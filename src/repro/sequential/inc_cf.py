"""Incremental SGD for collaborative filtering (ISGD; Vinagre et al. 2014).

GRAPE's ``IncEval`` for CF (paper Section 5.3): upon receiving updated
factor vectors for border nodes, re-fit *only* the ratings touching the
affected nodes — "modifies affected factor vectors based solely on the new
observations" — instead of a full epoch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.graph.graph import Node
from repro.sequential.cf import FactorModel, Rating

__all__ = ["isgd_update"]


def isgd_update(ratings: Sequence[Rating], model: FactorModel,
                affected: Set[Node], *, lr: float = 0.02, reg: float = 0.05,
                timestamp: int = 0, passes: int = 1) -> int:
    """Re-fit ratings incident to ``affected`` nodes (in place).

    Parameters
    ----------
    ratings:
        The local training set.
    affected:
        Nodes whose factor vectors changed (border updates from messages).
    passes:
        Number of ISGD passes over the affected ratings.

    Returns
    -------
    Number of rating examples processed — the incremental cost, which is
    proportional to the affected area, not to ``len(ratings)``.
    """
    touched = [(u, p, r) for u, p, r in ratings
               if u in affected or p in affected]
    for _ in range(passes):
        for u, p, r in touched:
            uf = model.get(u)
            pf = model.get(p)
            err = r - float(uf @ pf)
            model.set(u, uf + lr * (err * pf - reg * uf), timestamp)
            model.set(p, pf + lr * (err * uf - reg * pf), timestamp)
    return len(touched) * passes
