"""Bounded incremental SSSP (Ramalingam & Reps, J. Algorithms 1996).

GRAPE plugs this in as ``IncEval`` for SSSP (paper Fig. 4): given the
previous distances and a batch of *decreased* distance estimates (the
message ``M_i``), it propagates only through the affected area.  Its cost is
a function of ``|CHANGED| = |M_i| + |ΔO|``, not of the fragment size — the
paper's *boundedness* property (Section 3.3).
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Dict, Iterable, Set, Tuple

from repro.graph.graph import Graph, Node

__all__ = ["incremental_sssp_decrease"]


def incremental_sssp_decrease(graph: Graph, dist: Dict[Node, float],
                              updates: Dict[Node, float]) -> Set[Node]:
    """Apply decrease-only updates and propagate (in place).

    Parameters
    ----------
    graph:
        The (fragment) graph.
    dist:
        Current distance estimates; mutated in place.  Nodes absent from
        ``dist`` are treated as infinitely far.
    updates:
        New candidate distances for some nodes (from messages or edge
        insertions).  Updates that do not improve are ignored — this is what
        makes the computation monotonic.

    Returns
    -------
    The set of nodes whose distance changed (the affected area ``AFF``).
    """
    heap: list[Tuple[float, int, Node]] = []
    counter = 0
    changed: Set[Node] = set()

    for v, d in updates.items():
        if d < dist.get(v, inf):
            dist[v] = d
            changed.add(v)
            heap.append((d, counter, v))
            counter += 1
    heapq.heapify(heap)

    while heap:
        d, _c, u = heapq.heappop(heap)
        if d > dist.get(u, inf):
            continue
        if not graph.has_node(u):
            continue
        for v, w in graph.successors_with_weights(u):
            alt = d + w
            if alt < dist.get(v, inf):
                dist[v] = alt
                changed.add(v)
                counter += 1
                heapq.heappush(heap, (alt, counter, v))
    return changed
