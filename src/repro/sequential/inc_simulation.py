"""Incremental graph simulation under match invalidation (Fan et al.,
TODS 2013).

GRAPE plugs this in as ``IncEval`` for Sim (paper Section 5.1): a message
flips a border copy's status variable ``x_(u,v)`` to ``false``, which "is
treated as deletion of cross edges to v" — the incremental algorithm
propagates the invalidation backwards through the affected area only.
The cost depends on the update size and affected area, not on the fragment
size (*semi-boundedness*).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Set, Tuple

from repro.graph.graph import Graph, Node
from repro.sequential.simulation import SimRelation

__all__ = ["incremental_simulation_remove"]


def incremental_simulation_remove(pattern: Graph, graph: Graph,
                                  sim: SimRelation,
                                  invalidated: Iterable[Tuple[Node, Node]],
                                  *, frozen: Set[Node] | None = None,
                                  ) -> List[Tuple[Node, Node]]:
    """Remove invalidated matches from ``sim`` and propagate (in place).

    Parameters
    ----------
    pattern, graph:
        Query and (fragment) data graph.
    sim:
        The current relation, mutated in place.
    invalidated:
        Pairs ``(u, v)`` now known not to match (e.g. border copies
        falsified by their owner fragment).
    frozen:
        Data nodes whose membership is owned elsewhere; they are removed
        when explicitly invalidated but never by local propagation.

    Returns
    -------
    List of all pairs removed, including the seed invalidations that were
    actually present (the affected area ``AFF``).
    """
    frozen = frozen or set()
    preds_of: Dict[Node, List[Node]] = {u: [] for u in pattern.nodes()}
    for u, u2, _w in pattern.edges():
        preds_of[u2].append(u)

    queue: Deque[Tuple[Node, Node]] = deque()
    removed: List[Tuple[Node, Node]] = []

    for u, v in invalidated:
        if u in sim and v in sim[u]:
            sim[u].discard(v)
            removed.append((u, v))
            queue.append((u, v))

    while queue:
        u2, v2 = queue.popleft()
        # Removing (u2, v2) may strand a predecessor match (u, v) for each
        # query edge (u, u2) and each in-neighbor v of v2.
        if not graph.has_node(v2):
            continue
        for u in preds_of[u2]:
            target = sim[u2]
            for v in graph.predecessors(v2):
                if v not in sim.get(u, ()) or v in frozen:
                    continue
                still_ok = any(w in target for w in graph.successors(v))
                if not still_ok:
                    sim[u].discard(v)
                    removed.append((u, v))
                    queue.append((u, v))
    return removed
