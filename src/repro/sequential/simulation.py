"""Sequential graph simulation (Henzinger, Henzinger & Kopke, FOCS 1995).

Graph pattern matching via simulation (paper Section 5.1): ``G`` matches
pattern ``Q`` if there is a binary relation ``R ⊆ V_Q × V`` such that every
query node has a match and every match preserves labels and query edges.
If a simulation exists there is a unique *maximum* one, computable in
``O((|V_Q| + |E_Q|) (|V| + |E|))`` time by iterative refinement.

Two entry points:

* :func:`simulation_refinement` — the refinement kernel, supporting
  *frozen* rows for border-node copies whose membership is decided by the
  owning fragment (this is how the PIE program reuses the sequential code
  unchanged);
* :func:`maximum_simulation` — the whole-graph semantics (empty result when
  some query node has no match), used as the ground-truth oracle.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from repro.graph.graph import Graph, Node

__all__ = ["simulation_refinement", "maximum_simulation", "SimRelation"]

# sim relation: query node -> set of data nodes
SimRelation = Dict[Node, Set[Node]]


def _initial_candidates(pattern: Graph, graph: Graph,
                        candidates: Optional[Mapping[Node, Iterable[Node]]],
                        ) -> SimRelation:
    if candidates is not None:
        return {u: set(candidates.get(u, ())) for u in pattern.nodes()}
    by_label: Dict[object, Set[Node]] = {}
    for v in graph.nodes():
        by_label.setdefault(graph.node_label(v), set()).add(v)
    return {u: set(by_label.get(pattern.node_label(u), ()))
            for u in pattern.nodes()}


def simulation_refinement(pattern: Graph, graph: Graph, *,
                          candidates: Optional[Mapping[Node, Iterable[Node]]] = None,
                          frozen: Optional[Set[Node]] = None) -> SimRelation:
    """Refine candidate sets to the maximum relation satisfying the
    simulation edge condition.

    Parameters
    ----------
    pattern:
        The query graph ``Q`` (labeled, directed).
    graph:
        The data graph (or fragment).
    candidates:
        Optional pre-filtered initial candidates per query node (e.g. from
        the neighborhood index of :mod:`repro.optim.indexing`).  Defaults to
        all label-matching nodes.
    frozen:
        Data nodes whose membership must not be re-evaluated locally —
        GRAPE's border-node copies, whose truth is owned by another
        fragment.  They stay in whatever candidate sets they start in.

    Returns
    -------
    The refined relation as ``{query node: set of data nodes}``.
    """
    frozen = frozen or set()
    sim = _initial_candidates(pattern, graph, candidates)

    # Work-list over query edges: re-check (u, u') when sim(u') shrinks.
    query_edges = [(u, v) for u, v, _w in pattern.edges()]
    preds_of: Dict[Node, list] = {u: [] for u in pattern.nodes()}
    for u, u2 in query_edges:
        preds_of[u2].append(u)

    pending = set(query_edges)
    while pending:
        u, u2 = pending.pop()
        target = sim[u2]
        removed = []
        for v in sim[u]:
            if v in frozen:
                continue
            if not graph.has_node(v):
                continue
            ok = any(v2 in target for v2 in graph.successors(v))
            if not ok:
                removed.append(v)
        if removed:
            sim[u].difference_update(removed)
            for up in preds_of[u]:
                pending.add((up, u))
    return sim


def maximum_simulation(pattern: Graph, graph: Graph, *,
                       candidates: Optional[Mapping[Node, Iterable[Node]]] = None,
                       ) -> SimRelation:
    """Whole-graph maximum simulation ``Q(G)``.

    Returns the unique maximum relation, or all-empty sets when ``G`` does
    not match ``Q`` (paper: "If G does not match Q, Q(G) is the empty set").
    """
    sim = simulation_refinement(pattern, graph, candidates=candidates)
    if any(not matches for matches in sim.values()):
        return {u: set() for u in pattern.nodes()}
    return sim
