"""Sequential single-source shortest paths (Dijkstra).

This is the textbook algorithm GRAPE plugs in as ``PEval`` for SSSP
(paper Fig. 3): the only additions GRAPE needs are the message preamble and
segment, which live in :mod:`repro.pie_programs.sssp` — the algorithm here
is untouched, exactly the paper's point.
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Dict, Iterable, Optional, Tuple

from repro.graph.graph import Graph, Node

__all__ = ["dijkstra", "sssp_distances"]


def dijkstra(graph: Graph, source: Node,
             initial: Optional[Dict[Node, float]] = None) -> Dict[Node, float]:
    """Shortest distances from ``source`` to every node of ``graph``.

    Parameters
    ----------
    graph:
        Edge weights must be non-negative.
    source:
        Start node.  It need not be present in the graph (all distances are
        then infinite) — this matters for fragments that do not contain the
        query source.
    initial:
        Optional pre-existing distance estimates (e.g. carried over from a
        previous round); Dijkstra will only improve on them.

    Returns
    -------
    dict mapping every node to its distance (``math.inf`` if unreachable).
    """
    dist: Dict[Node, float] = {v: inf for v in graph.nodes()}
    if initial:
        for v, d in initial.items():
            if v in dist:
                dist[v] = min(dist[v], d)
    if graph.has_node(source):
        dist[source] = min(dist.get(source, inf), 0.0)

    heap: list[Tuple[float, int, Node]] = []
    counter = 0  # tie-breaker: node objects may not be orderable
    for v, d in dist.items():
        if d < inf:
            heap.append((d, counter, v))
            counter += 1
    heapq.heapify(heap)

    settled = set()
    while heap:
        d, _c, u = heapq.heappop(heap)
        if u in settled or d > dist[u]:
            continue
        settled.add(u)
        for v, w in graph.successors_with_weights(u):
            if w < 0:
                raise ValueError(f"negative edge weight on ({u}, {v})")
            alt = d + w
            if alt < dist[v]:
                dist[v] = alt
                counter += 1
                heapq.heappush(heap, (alt, counter, v))
    return dist


def sssp_distances(graph: Graph, source: Node) -> Dict[Node, float]:
    """Ground-truth oracle used by tests: plain Dijkstra on the full graph."""
    return dijkstra(graph, source)
