"""Collaborative filtering by stochastic gradient descent (Koren et al. 2009).

The paper's CF case study (Section 5.3): learn latent factor vectors
``u.f`` and ``p.f`` minimizing

    sum over training edges (u,p) of (r(u,p) - u.f^T p.f)^2
        + reg * (||u.f||^2 + ||p.f||^2)

via SGD.  GRAPE plugs the epoch function in as ``PEval``; the incremental
variant (ISGD, :mod:`repro.sequential.inc_cf`) is ``IncEval``.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph, Node

__all__ = ["FactorModel", "sgd_epoch", "rmse", "extract_ratings",
           "split_train_test"]

Rating = Tuple[Node, Node, float]


class FactorModel:
    """Latent factor vectors for users and items, with timestamps.

    The paper's status variable is ``v.x = (v.f, t)`` — a factor vector and
    the superstep at which it was last updated (used by the ``max``-on-
    timestamp aggregator).
    """

    def __init__(self, num_factors: int = 8, seed: int = 0,
                 init_scale: float = 0.1):
        self.num_factors = num_factors
        self._rng = np.random.default_rng(seed)
        self._init_scale = init_scale
        self.factors: Dict[Node, np.ndarray] = {}
        self.timestamps: Dict[Node, int] = {}

    def get(self, v: Node) -> np.ndarray:
        vec = self.factors.get(v)
        if vec is None:
            vec = self._rng.normal(0.0, self._init_scale, self.num_factors)
            self.factors[v] = vec
            self.timestamps[v] = 0
        return vec

    def set(self, v: Node, vec: np.ndarray, timestamp: int) -> None:
        self.factors[v] = vec
        self.timestamps[v] = timestamp

    def predict(self, u: Node, p: Node) -> float:
        return float(self.get(u) @ self.get(p))

    def copy(self) -> "FactorModel":
        dup = FactorModel(self.num_factors)
        dup.factors = {v: f.copy() for v, f in self.factors.items()}
        dup.timestamps = dict(self.timestamps)
        return dup


def sgd_epoch(ratings: Sequence[Rating], model: FactorModel, *,
              lr: float = 0.02, reg: float = 0.05, timestamp: int = 0,
              shuffle_seed: int | None = None) -> float:
    """One SGD pass over ``ratings``; returns the epoch's mean squared error.

    Implements the paper's update equations (1)–(2): step each factor in
    the negative gradient direction of the regularized squared error.
    Updated vectors get ``timestamp`` recorded for aggregation.
    """
    order = list(range(len(ratings)))
    if shuffle_seed is not None:
        random.Random(shuffle_seed).shuffle(order)
    total_sq = 0.0
    for idx in order:
        u, p, r = ratings[idx]
        uf = model.get(u)
        pf = model.get(p)
        err = r - float(uf @ pf)
        total_sq += err * err
        new_uf = uf + lr * (err * pf - reg * uf)
        new_pf = pf + lr * (err * uf - reg * pf)
        model.set(u, new_uf, timestamp)
        model.set(p, new_pf, timestamp)
    return total_sq / len(ratings) if ratings else 0.0


def rmse(ratings: Sequence[Rating], model: FactorModel) -> float:
    """Root-mean-square prediction error on a rating set."""
    if not ratings:
        return 0.0
    total = 0.0
    for u, p, r in ratings:
        err = r - model.predict(u, p)
        total += err * err
    return float(np.sqrt(total / len(ratings)))


def extract_ratings(graph: Graph) -> List[Rating]:
    """All ``(user, item, rating)`` triples from a bipartite rating graph."""
    return [(u, p, w) for u, p, w in graph.edges()]


def split_train_test(ratings: Sequence[Rating], train_fraction: float,
                     seed: int = 0) -> Tuple[List[Rating], List[Rating]]:
    """Deterministic train/test split (paper uses |E_T| = 90% / 50% of |E|)."""
    if not 0.0 < train_fraction <= 1.0:
        raise ValueError("train_fraction must be in (0, 1]")
    order = list(ratings)
    random.Random(seed).shuffle(order)
    cut = int(len(order) * train_fraction)
    return order[:cut], order[cut:]
