"""Subgraph isomorphism via VF2 (Cordella et al., TPAMI 2004).

The paper parallelizes VF2 for SubIso (Section 5.1): two supersteps — one
to ship each fragment the ``d_Q``-neighborhood of its in-border nodes, one
to run VF2 locally.  The sequential algorithm here is a faithful VF2-style
backtracking matcher with label and connectivity feasibility pruning.

Matching semantics: a match is an injective mapping ``m`` from pattern
nodes to graph nodes preserving node labels and every pattern edge
(``(m(u), m(u')) ∈ E`` for each ``(u, u') ∈ E_Q``) — the standard subgraph
(mono)morphism used in pattern-matching workloads.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graph.graph import Graph, Node

__all__ = ["vf2_all_matches", "pattern_diameter", "canonical_match"]


def pattern_diameter(pattern: Graph) -> int:
    """Diameter ``d_Q`` of a pattern: the maximum over node pairs of the
    undirected shortest-path length (paper Section 5.1).

    Disconnected patterns get the diameter of their largest component-wise
    eccentricity (cross-component distances are ignored).
    """
    best = 0
    nodes = list(pattern.nodes())
    for s in nodes:
        dist = {s: 0}
        dq = deque([s])
        while dq:
            v = dq.popleft()
            for w in pattern.neighbors(v):
                if w not in dist:
                    dist[w] = dist[v] + 1
                    dq.append(w)
        if dist:
            best = max(best, max(dist.values()))
    return best


def _match_order(pattern: Graph) -> List[Node]:
    """Connectivity-first ordering: start at the highest-degree node and
    grow through neighbors, so partial matches stay connected and prune
    early."""
    nodes = list(pattern.nodes())
    if not nodes:
        return []
    order: List[Node] = []
    placed: Set[Node] = set()
    remaining = set(nodes)
    while remaining:
        # Prefer nodes adjacent to the current partial order.
        frontier = [v for v in remaining
                    if any(w in placed for w in pattern.neighbors(v))]
        pool = frontier or list(remaining)
        nxt = max(pool, key=lambda v: (pattern.degree(v), repr(v)))
        order.append(nxt)
        placed.add(nxt)
        remaining.discard(nxt)
    return order


def vf2_all_matches(pattern: Graph, graph: Graph, *,
                    limit: Optional[int] = None) -> List[Dict[Node, Node]]:
    """All subgraph-isomorphism matches of ``pattern`` in ``graph``.

    Parameters
    ----------
    limit:
        Optional cap on the number of matches returned (SubIso is
        NP-complete; benchmarks bound the output).

    Returns
    -------
    A list of ``{pattern node: graph node}`` mappings.
    """
    order = _match_order(pattern)
    if not order:
        return [{}]

    by_label: Dict[object, List[Node]] = {}
    for v in graph.nodes():
        by_label.setdefault(graph.node_label(v), []).append(v)

    # Precompute pattern adjacency against earlier nodes in the order.
    pos = {u: i for i, u in enumerate(order)}
    earlier_out: List[List[Node]] = []  # pattern edges u -> earlier
    earlier_in: List[List[Node]] = []   # pattern edges earlier -> u
    for u in order:
        earlier_out.append([w for w in pattern.successors(u)
                            if pos[w] < pos[u]])
        earlier_in.append([w for w in pattern.predecessors(u)
                           if pos[w] < pos[u]])

    matches: List[Dict[Node, Node]] = []
    mapping: Dict[Node, Node] = {}
    used: Set[Node] = set()

    def candidates(depth: int) -> Iterable[Node]:
        u = order[depth]
        # Anchor on an already-mapped neighbor when possible: candidates
        # are then restricted to that anchor's adjacency.
        if earlier_out[depth]:
            anchor = mapping[earlier_out[depth][0]]
            return list(graph.predecessors(anchor))
        if earlier_in[depth]:
            anchor = mapping[earlier_in[depth][0]]
            return list(graph.successors(anchor))
        return by_label.get(pattern.node_label(u), [])

    def feasible(u: Node, v: Node, depth: int) -> bool:
        if graph.node_label(v) != pattern.node_label(u):
            return False
        if graph.out_degree(v) < pattern.out_degree(u):
            return False
        if graph.in_degree(v) < pattern.in_degree(u):
            return False
        for w in earlier_out[depth]:      # u -> w in pattern
            if not graph.has_edge(v, mapping[w]):
                return False
        for w in earlier_in[depth]:       # w -> u in pattern
            if not graph.has_edge(mapping[w], v):
                return False
        return True

    def backtrack(depth: int) -> bool:
        """Returns True when the match limit is reached."""
        if depth == len(order):
            matches.append(dict(mapping))
            return limit is not None and len(matches) >= limit
        u = order[depth]
        for v in candidates(depth):
            if v in used:
                continue
            if not feasible(u, v, depth):
                continue
            mapping[u] = v
            used.add(v)
            if backtrack(depth + 1):
                return True
            used.discard(v)
            del mapping[u]
        return False

    backtrack(0)
    return matches


def canonical_match(match: Dict[Node, Node]) -> FrozenSet[Tuple[Node, Node]]:
    """Hashable canonical form of a match, for dedup across fragments."""
    return frozenset(match.items())
