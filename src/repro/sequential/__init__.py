"""The sequential algorithm library GRAPE plugs into PIE programs.

Batch algorithms (``PEval`` candidates): Dijkstra, HHK graph simulation,
VF2 subgraph isomorphism, linear connected components, SGD matrix
factorization.  Incremental algorithms (``IncEval`` candidates):
Ramalingam–Reps SSSP, incremental simulation maintenance, bounded cid
lowering for CC, ISGD.
"""

from repro.sequential.cf import (FactorModel, extract_ratings, rmse,
                                 sgd_epoch, split_train_test)
from repro.sequential.inc_cf import isgd_update
from repro.sequential.inc_simulation import incremental_simulation_remove
from repro.sequential.inc_sssp import incremental_sssp_decrease
from repro.sequential.simulation import (SimRelation, maximum_simulation,
                                         simulation_refinement)
from repro.sequential.sssp import dijkstra, sssp_distances
from repro.sequential.subiso import (canonical_match, pattern_diameter,
                                     vf2_all_matches)
from repro.sequential.wcc import (DisjointSets, LocalComponents,
                                  connected_components)

__all__ = [
    "dijkstra", "sssp_distances", "incremental_sssp_decrease",
    "maximum_simulation", "simulation_refinement", "SimRelation",
    "incremental_simulation_remove", "vf2_all_matches", "pattern_diameter",
    "canonical_match", "connected_components", "DisjointSets",
    "LocalComponents", "FactorModel", "sgd_epoch", "rmse", "extract_ratings",
    "split_train_test", "isgd_update",
]
