from setuptools import setup

# Metadata lives in pyproject.toml; this shim enables legacy editable
# installs in environments without the `wheel` package.
setup()
